"""Declarative specifications of the relational transformation operators.

A spec captures everything needed to (a) derive the transformed tables'
schemas, (b) evaluate the operator on consistent data (the oracle in
:mod:`repro.relational.operators`), and (c) drive the propagation rules.
Specs are plain frozen value objects shared by the transformation
framework, the baselines, the recovery rebuilders and the test oracles.

Naming conventions follow the paper (Sections 4-5): a full outer join
transforms source tables *R* and *S* into *T* on a join attribute; a split
transforms *T* into *R* and *S* on a split attribute.  The join/split
attribute appears **once** in the joined table, named after R's join
attribute (as in the paper's Figure 1, where R.c joins S.c into T.c).

Beyond the paper's pair, the corpus operators follow the same shape: an
**explode** (:class:`ExplodeSpec`) unnests a multi-value column into one
row per element (the inverse-cardinality cousin of the split), and a
**retype** (:class:`RetypeSpec`) rewrites one column through a named cast
with a new NULL default.  Both stay declarative -- plain data, no
callables -- so they survive the WAL frame codec and the JSON plan codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SchemaError
from repro.storage.schema import TableSchema


@dataclass(frozen=True)
class FojSpec:
    """Specification of a full outer join transformation (Section 4).

    Attributes:
        target_name: Name of the transformed table T (its internal name
            during the transformation; it may be published under another
            name at synchronization).
        r_name: Name of source table R (whose key becomes T's key in the
            one-to-many case).
        s_name: Name of source table S (whose join attribute is unique in
            the one-to-many case).
        join_attr_r: R's join attribute.
        join_attr_s: S's join attribute.
        r_attrs: Attributes of R included in T (must contain R's key and
            the join attribute).  They keep their R names in T.
        s_attrs: Attributes of S included in T, *excluding* S's join
            attribute (represented in T by the shared join column).
        s_key: Attributes identifying an S record, as named **in T**: S's
            candidate-key attributes, with the join attribute spelled as
            the join column.  Section 3.1 requires a candidate key of each
            source table in the transformed table.
        r_key: Attributes identifying an R record in T (R's primary key).
        many_to_many: ``True`` when S's join attribute is not unique; T's
            key is then (r_key + s_key) and the modified rules of
            Section 4.2's sketch apply.
    """

    target_name: str
    r_name: str
    s_name: str
    join_attr_r: str
    join_attr_s: str
    r_attrs: Tuple[str, ...]
    s_attrs: Tuple[str, ...]
    r_key: Tuple[str, ...]
    s_key: Tuple[str, ...]
    many_to_many: bool = False

    @property
    def join_column(self) -> str:
        """Name of the shared join column in T (R's join attribute name)."""
        return self.join_attr_r

    @property
    def target_key(self) -> Tuple[str, ...]:
        """Primary key of T: R's key, or R-key + S-key for many-to-many."""
        if self.many_to_many:
            return tuple(self.r_key) + tuple(
                a for a in self.s_key if a not in self.r_key)
        return tuple(self.r_key)

    @property
    def target_columns(self) -> Tuple[str, ...]:
        """All columns of T, R side first."""
        return tuple(self.r_attrs) + tuple(self.s_attrs)

    @staticmethod
    def derive(r_schema: TableSchema, s_schema: TableSchema,
               target_name: str, join_attr_r: str, join_attr_s: str,
               r_attrs: Optional[Sequence[str]] = None,
               s_attrs: Optional[Sequence[str]] = None,
               many_to_many: bool = False) -> "FojSpec":
        """Build a spec from source schemas with sensible defaults.

        Defaults include *all* attributes of both sources.  Validates the
        paper's preparation-step requirements (Section 3.1): T must carry a
        candidate key of each source plus the join attributes.
        """
        if not r_schema.has_attribute(join_attr_r):
            raise SchemaError(f"{r_schema.name!r} has no {join_attr_r!r}")
        if not s_schema.has_attribute(join_attr_s):
            raise SchemaError(f"{s_schema.name!r} has no {join_attr_s!r}")

        r_cols = tuple(r_attrs) if r_attrs is not None \
            else r_schema.attribute_names
        if join_attr_r not in r_cols:
            r_cols = r_cols + (join_attr_r,)
        for col in r_schema.primary_key:
            if col not in r_cols:
                raise SchemaError(
                    f"T must include R's key attribute {col!r} (Section 3.1)")

        s_cols = tuple(s_attrs) if s_attrs is not None else tuple(
            a for a in s_schema.attribute_names if a != join_attr_s)
        s_cols = tuple(a for a in s_cols if a != join_attr_s)

        overlap = set(r_cols) & set(s_cols)
        if overlap:
            raise SchemaError(
                f"attributes {sorted(overlap)} exist in both sources; "
                "project or rename before joining")

        # S's identifying attributes as named in T.
        s_key_in_t = []
        for col in s_schema.primary_key:
            if col == join_attr_s:
                s_key_in_t.append(join_attr_r)
            elif col in s_cols:
                s_key_in_t.append(col)
            else:
                raise SchemaError(
                    f"T must include S's key attribute {col!r} (Section 3.1)")

        return FojSpec(
            target_name=target_name,
            r_name=r_schema.name,
            s_name=s_schema.name,
            join_attr_r=join_attr_r,
            join_attr_s=join_attr_s,
            r_attrs=r_cols,
            s_attrs=s_cols,
            r_key=r_schema.primary_key,
            s_key=tuple(s_key_in_t),
            many_to_many=many_to_many,
        )

    def target_schema(self) -> TableSchema:
        """Schema of the transformed table T."""
        return TableSchema(self.target_name, list(self.target_columns),
                           primary_key=self.target_key)

    # -- row plumbing ----------------------------------------------------------

    def r_part(self, r_values: Dict[str, object]) -> Dict[str, object]:
        """Project an R row onto its T columns."""
        return {a: r_values.get(a) for a in self.r_attrs}

    def s_part(self, s_values: Dict[str, object]) -> Dict[str, object]:
        """Project an S row onto its T columns (join value excluded)."""
        return {a: s_values.get(a) for a in self.s_attrs}

    def null_r_part(self) -> Dict[str, object]:
        """The ``rnull`` record: all R-side columns NULL (Section 4.1)."""
        return {a: None for a in self.r_attrs}

    def null_s_part(self) -> Dict[str, object]:
        """The ``snull`` record: all S-side columns NULL (Section 4.1)."""
        return {a: None for a in self.s_attrs}

    def s_part_of_t(self, t_values: Dict[str, object]) -> Dict[str, object]:
        """Extract the S-side columns from an existing T row."""
        return {a: t_values.get(a) for a in self.s_attrs}

    def r_part_of_t(self, t_values: Dict[str, object]) -> Dict[str, object]:
        """Extract the R-side columns from an existing T row."""
        return {a: t_values.get(a) for a in self.r_attrs}


@dataclass(frozen=True)
class SplitSpec:
    """Specification of a vertical split transformation (Section 5).

    Attributes:
        source_name: Name of the source table T.
        r_name: Name of the first target table R (keeps T's primary key).
        s_name: Name of the second target table S (keyed by the split
            attribute).
        split_attr: The attribute T is split on.  It appears in both R (as
            the link to S) and S (as its key).  The paper requires it to be
            a candidate key of S; for readability it is S's primary key
            here, as in the paper's presentation.
        r_attrs: Attributes of T going to R (must include T's key and the
            split attribute).
        s_attrs: Attributes of T going to S (must include the split
            attribute).
        r_key: R's primary key (= T's primary key).
    """

    source_name: str
    r_name: str
    s_name: str
    split_attr: str
    r_attrs: Tuple[str, ...]
    s_attrs: Tuple[str, ...]
    r_key: Tuple[str, ...]

    @property
    def s_key(self) -> Tuple[str, ...]:
        """S's primary key: the split attribute."""
        return (self.split_attr,)

    @property
    def s_dependent_attrs(self) -> Tuple[str, ...]:
        """S attributes functionally determined by the split attribute."""
        return tuple(a for a in self.s_attrs if a != self.split_attr)

    @staticmethod
    def derive(t_schema: TableSchema, r_name: str, s_name: str,
               split_attr: str,
               s_attrs: Sequence[str],
               r_attrs: Optional[Sequence[str]] = None) -> "SplitSpec":
        """Build a spec from the source schema.

        ``s_attrs`` lists the columns moving to S (the split attribute is
        added if omitted); ``r_attrs`` defaults to everything else plus the
        key and the split attribute.
        """
        if not t_schema.has_attribute(split_attr):
            raise SchemaError(f"{t_schema.name!r} has no {split_attr!r}")
        s_cols = tuple(s_attrs)
        if split_attr not in s_cols:
            s_cols = (split_attr,) + s_cols
        for col in s_cols:
            if not t_schema.has_attribute(col):
                raise SchemaError(f"{t_schema.name!r} has no {col!r}")
        if r_attrs is None:
            r_cols = tuple(
                a for a in t_schema.attribute_names
                if a == split_attr or a not in s_cols)
        else:
            r_cols = tuple(r_attrs)
            if split_attr not in r_cols:
                r_cols = r_cols + (split_attr,)
        for col in t_schema.primary_key:
            if col not in r_cols:
                raise SchemaError(
                    f"R must include T's key attribute {col!r} (Section 3.1)")
        return SplitSpec(
            source_name=t_schema.name,
            r_name=r_name,
            s_name=s_name,
            split_attr=split_attr,
            r_attrs=r_cols,
            s_attrs=s_cols,
            r_key=t_schema.primary_key,
        )

    def r_schema(self) -> TableSchema:
        """Schema of target table R."""
        return TableSchema(self.r_name, list(self.r_attrs),
                           primary_key=self.r_key)

    def s_schema(self) -> TableSchema:
        """Schema of target table S."""
        return TableSchema(self.s_name, list(self.s_attrs),
                           primary_key=self.s_key)

    # -- row plumbing -------------------------------------------------------------

    def r_part(self, t_values: Dict[str, object]) -> Dict[str, object]:
        """Project a T row onto R's columns."""
        return {a: t_values.get(a) for a in self.r_attrs}

    def s_part(self, t_values: Dict[str, object]) -> Dict[str, object]:
        """Project a T row onto S's columns."""
        return {a: t_values.get(a) for a in self.s_attrs}

    def split_value(self, values: Dict[str, object]) -> Tuple:
        """The split-attribute key tuple of a row image."""
        return (values.get(self.split_attr),)


@dataclass(frozen=True)
class ExplodeSpec:
    """Specification of a multi-value column explode (corpus operator).

    One source row whose ``list_attr`` holds a separator-joined list of
    values becomes N target rows, one per distinct element -- the
    inverse-cardinality cousin of the vertical split (which maps N rows
    to 1 shared S record).  A row whose list is NULL or empty explodes to
    exactly one child with a NULL element, the explode analogue of the
    FOJ's null-padded records: every source row stays represented, so
    "no children" always means "no source row" to the propagation rules.

    Attributes:
        source_name: The table being exploded.
        target_name: The exploded table (one row per element).
        list_attr: The multi-value column (a separator-joined string).
        value_attr: Name of the element column in the target.
        keep_attrs: Source attributes carried onto every child (must
            include the source key; never includes ``list_attr``).
        source_key: The source table's primary key.
        separator: Element separator within ``list_attr``.
    """

    source_name: str
    target_name: str
    list_attr: str
    value_attr: str
    keep_attrs: Tuple[str, ...]
    source_key: Tuple[str, ...]
    separator: str = ","

    @property
    def target_key(self) -> Tuple[str, ...]:
        """Target key: the source key plus the exploded element."""
        return tuple(self.source_key) + (self.value_attr,)

    @staticmethod
    def derive(source_schema: TableSchema, target_name: str,
               list_attr: str, value_attr: str,
               keep_attrs: Optional[Sequence[str]] = None,
               separator: str = ",") -> "ExplodeSpec":
        """Build a spec from the source schema with sensible defaults.

        ``keep_attrs`` defaults to every source attribute except the
        list column itself; it must cover the source key so each child
        remains addressable by its origin row.
        """
        if not source_schema.has_attribute(list_attr):
            raise SchemaError(f"{source_schema.name!r} has no {list_attr!r}")
        if list_attr in source_schema.primary_key:
            raise SchemaError(
                f"cannot explode key attribute {list_attr!r} of "
                f"{source_schema.name!r}")
        keep = tuple(keep_attrs) if keep_attrs is not None else tuple(
            a for a in source_schema.attribute_names if a != list_attr)
        if list_attr in keep:
            raise SchemaError(
                f"the exploded column {list_attr!r} cannot also be kept")
        for col in keep:
            if not source_schema.has_attribute(col):
                raise SchemaError(f"{source_schema.name!r} has no {col!r}")
        for col in source_schema.primary_key:
            if col not in keep:
                raise SchemaError(
                    f"the target must keep the source key attribute "
                    f"{col!r} (Section 3.1)")
        if value_attr in keep:
            raise SchemaError(
                f"element column {value_attr!r} collides with a kept "
                "source attribute")
        if not separator:
            raise SchemaError("separator must be a non-empty string")
        return ExplodeSpec(
            source_name=source_schema.name,
            target_name=target_name,
            list_attr=list_attr,
            value_attr=value_attr,
            keep_attrs=keep,
            source_key=source_schema.primary_key,
            separator=separator,
        )

    def target_schema(self) -> TableSchema:
        """Schema of the exploded table."""
        return TableSchema(self.target_name,
                           list(self.keep_attrs) + [self.value_attr],
                           primary_key=self.target_key)

    # -- row plumbing -------------------------------------------------------------

    def elements(self, values: Dict[str, object]) -> List[Optional[str]]:
        """Distinct elements of a source row's list, in first-seen order.

        NULL or element-free lists yield ``[None]`` -- the null-padded
        child keeping the row represented in the target.
        """
        raw = values.get(self.list_attr)
        if raw is None:
            return [None]
        parts = [p.strip() for p in str(raw).split(self.separator)]
        seen: Dict[str, None] = dict.fromkeys(p for p in parts if p)
        return list(seen) if seen else [None]

    def parent_key(self, values: Dict[str, object]) -> Tuple:
        """The source-key tuple of a row image."""
        return tuple(values.get(a) for a in self.source_key)

    def child_key(self, values: Dict[str, object],
                  element: Optional[str]) -> Tuple:
        """Target key of the child for one element."""
        return self.parent_key(values) + (element,)

    def child_values(self, values: Dict[str, object],
                     element: Optional[str]) -> Dict[str, object]:
        """The child row for one element of a source row image."""
        child = {a: values.get(a) for a in self.keep_attrs}
        child[self.value_attr] = element
        return child

    def kept_changes(self, changes: Dict[str, object]) -> Dict[str, object]:
        """Project an update's changes onto the kept columns."""
        return {k: v for k, v in changes.items() if k in self.keep_attrs}


#: Named casts for :class:`RetypeSpec` -- strings, not callables, so a
#: retype spec stays JSON- and WAL-frame-codable.  Each cast is applied
#: to non-NULL values only (NULLs take the spec's ``default``).
RETYPE_CASTS: Dict[str, Callable[[object], object]] = {
    "int": lambda v: int(str(v).strip()),
    "float": lambda v: float(str(v).strip()),
    "str": str,
    "bool": lambda v: bool(v) if not isinstance(v, str)
        else v.strip().lower() not in ("", "0", "false", "no"),
}


@dataclass(frozen=True)
class RetypeSpec:
    """Specification of a column retype / default change (corpus operator).

    The target table has the source's schema and key; one non-key column
    is rewritten through a named cast from :data:`RETYPE_CASTS`, and NULL
    values are replaced by a new default.  A value the cast cannot parse
    is the retype analogue of the paper's Example 1 dirty data: the
    transformation surfaces it as
    :class:`~repro.common.errors.InconsistentDataError` instead of
    guessing.

    Attributes:
        source_name: The table being retyped.
        target_name: The retyped copy.
        attr: The column rewritten (must not be part of the key).
        cast: A key of :data:`RETYPE_CASTS`.
        default: Replacement for NULL values (the default-change half;
            ``None`` keeps NULLs).
    """

    source_name: str
    target_name: str
    attr: str
    cast: str = "str"
    default: Optional[object] = None

    @staticmethod
    def derive(source_schema: TableSchema, target_name: str, attr: str,
               cast: str = "str",
               default: Optional[object] = None) -> "RetypeSpec":
        """Build a spec from the source schema, validating eagerly."""
        if not source_schema.has_attribute(attr):
            raise SchemaError(f"{source_schema.name!r} has no {attr!r}")
        if attr in source_schema.primary_key:
            raise SchemaError(
                f"cannot retype key attribute {attr!r} of "
                f"{source_schema.name!r} (the cast would rewrite row "
                "identity)")
        if cast not in RETYPE_CASTS:
            raise SchemaError(
                f"unknown cast {cast!r}; available: "
                f"{sorted(RETYPE_CASTS)}")
        return RetypeSpec(source_name=source_schema.name,
                          target_name=target_name, attr=attr, cast=cast,
                          default=default)

    def target_schema(self, source_schema: TableSchema) -> TableSchema:
        """Schema of the retyped table (source schema, new name)."""
        return source_schema.rename(self.target_name)

    # -- row plumbing -------------------------------------------------------------

    def cast_value(self, value: object) -> object:
        """Cast one value (NULL takes the new default)."""
        if value is None:
            return self.default
        return RETYPE_CASTS[self.cast](value)

    def retype_row(self, values: Dict[str, object]) -> Dict[str, object]:
        """A source row image with the retyped column rewritten."""
        out = dict(values)
        out[self.attr] = self.cast_value(values.get(self.attr))
        return out

    def retype_changes(self, changes: Dict[str, object]) -> Dict[str, object]:
        """An update's changes with the retyped column rewritten."""
        out = dict(changes)
        if self.attr in out:
            out[self.attr] = self.cast_value(out[self.attr])
        return out
