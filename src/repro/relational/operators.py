"""Reference (oracle) evaluation of the FOJ and split operators.

These functions compute the operators on *consistent snapshots* of plain
row dictionaries.  They serve three roles:

* the **initial population** step applies them to the fuzzily read source
  buffers (Section 3.2: "the transformation operator is applied and the
  result ... is inserted into the transformed tables");
* restart **recovery** recomputes published tables at a swap point;
* the **test suite** uses them as the convergence oracle for Theorem 1:
  after final propagation, the transformed tables must equal the operator
  applied to the final source state.

NULL join values follow SQL semantics: they never match, so a row with a
NULL join attribute is joined with the opposite NULL record.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.common.errors import InconsistentDataError
from repro.relational.spec import ExplodeSpec, FojSpec, RetypeSpec, SplitSpec

RowDict = Dict[str, object]


def full_outer_join(spec: FojSpec, r_rows: Iterable[RowDict],
                    s_rows: Iterable[RowDict]) -> List[RowDict]:
    """Full outer join of two row collections per ``spec``.

    Rows without a join match on the opposite side are joined with the
    R-/S- NULL record, exactly as in the paper's Figure 1.  Works for both
    one-to-many and many-to-many data (the operator itself is agnostic;
    only the propagation rules differ).
    """
    s_by_join: Dict[object, List[RowDict]] = {}
    for s in s_rows:
        value = s.get(spec.join_attr_s)
        s_by_join.setdefault(value, []).append(s)

    result: List[RowDict] = []
    matched_s: set = set()
    for r in r_rows:
        value = r.get(spec.join_attr_r)
        matches = s_by_join.get(value, []) if value is not None else []
        if matches:
            matched_s.add(value)
            for s in matches:
                row = spec.r_part(r)
                row.update(spec.s_part(s))
                result.append(row)
        else:
            row = spec.r_part(r)
            row.update(spec.null_s_part())
            result.append(row)

    for value, group in s_by_join.items():
        # NULL join values on the S side never match anything, so those
        # rows are always unmatched; non-NULL values are unmatched only if
        # no R row joined them.
        if value is not None and value in matched_s:
            continue
        for s in group:
            row = spec.null_r_part()
            row[spec.join_column] = value
            row.update(spec.s_part(s))
            result.append(row)
    return result


def split(spec: SplitSpec, t_rows: Iterable[RowDict],
          strict: bool = True) -> Tuple[List[RowDict], List[RowDict],
                                        Dict[Tuple, int], List[Tuple]]:
    """Vertical split of a row collection per ``spec``.

    Returns ``(r_rows, s_rows, counters, inconsistent)`` where ``counters``
    maps each split value to the number of contributing source rows (the
    paper's duplicate counter, after Gupta et al.) and ``inconsistent``
    lists split values whose contributors disagree on the dependent
    attributes (the paper's Example 1).

    Args:
        spec: The split specification.
        t_rows: Source rows.
        strict: If true, raise :class:`InconsistentDataError` when any
            split value is inconsistent (split of consistent data,
            Section 5.2); if false, return them for the consistency
            checker to deal with (Section 5.3) -- the S image of an
            inconsistent value is taken from its first contributor.
    """
    r_rows: List[RowDict] = []
    s_by_value: Dict[Tuple, RowDict] = {}
    counters: Dict[Tuple, int] = {}
    inconsistent: List[Tuple] = []

    for t in t_rows:
        r_rows.append(spec.r_part(t))
        value = spec.split_value(t)
        if value[0] is None:
            # The split attribute must identify an S record (candidate key
            # of S, Section 5): NULL can never do that.
            raise InconsistentDataError((value,))
        s_image = spec.s_part(t)
        existing = s_by_value.get(value)
        if existing is None:
            s_by_value[value] = s_image
            counters[value] = 1
        else:
            counters[value] += 1
            if existing != s_image and value not in inconsistent:
                inconsistent.append(value)

    if strict and inconsistent:
        raise InconsistentDataError(tuple(sorted(inconsistent)))
    return r_rows, list(s_by_value.values()), counters, inconsistent


def explode(spec: ExplodeSpec,
            source_rows: Iterable[RowDict]) -> List[RowDict]:
    """Explode a row collection per ``spec`` (one row per list element).

    A row with a NULL or element-free list yields one null-element child
    (the outer-explode analogue of the FOJ's null-padded records), so the
    result always carries every source row.
    """
    result: List[RowDict] = []
    for values in source_rows:
        for element in spec.elements(values):
            result.append(spec.child_values(values, element))
    return result


def retype(spec: RetypeSpec,
           source_rows: Iterable[RowDict]) -> List[RowDict]:
    """Retype a row collection per ``spec``.

    A value the named cast cannot parse raises
    :class:`InconsistentDataError` carrying the offending row's retyped
    column value -- the retype analogue of the paper's Example 1.
    """
    result: List[RowDict] = []
    for values in source_rows:
        try:
            result.append(spec.retype_row(values))
        except (TypeError, ValueError):
            raise InconsistentDataError((values.get(spec.attr),))
    return result


def normalize_rows(rows: Iterable[RowDict]) -> List[Tuple]:
    """Canonical multiset form of row dicts, for order-insensitive compare.

    Each row becomes a tuple of (attr, value) pairs sorted by attribute
    name; the list is sorted by string rendering so heterogeneous value
    types do not break comparison.
    """
    canon = [tuple(sorted(r.items(), key=lambda kv: kv[0])) for r in rows]
    return sorted(canon, key=repr)


def rows_equal(a: Iterable[RowDict], b: Iterable[RowDict]) -> bool:
    """Whether two row collections are equal as multisets."""
    return normalize_rows(a) == normalize_rows(b)
