"""Closed-loop client workload (paper Section 6).

"Each transaction updated 10 records using record locks.  100% workload
was defined as the number of concurrent transactions that produced the
highest possible throughput.  Lower workloads were achieved by reducing
the number of concurrent transactions."

Each simulated client runs transactions back to back: begin, N updates on
random records, commit.  A configurable fraction of updates hits the
transformation's source table(s); the rest hit a *dummy* table, which
"keep[s] the workload constant" while varying the relevant-log-record rate
(the Figure 4(c) experiment).

Clients handle the full concurrency protocol of the engine: lock waits
park the client until the lock manager wakes it; deadlocks and forced
aborts (non-blocking abort synchronization) abort the transaction and the
client starts a fresh one; a table that disappears in the schema swap is
remapped to its post-swap fallback target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    DeadlockError,
    LockWaitError,
    NoSuchRowError,
    NoSuchTableError,
    TransactionAbortedError,
)
from repro.engine.database import Database
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.server import Job, Server, ServerConfig


@dataclass
class UpdateTarget:
    """One table the workload updates.

    Attributes:
        table: Table name.
        keys: Primary keys to sample from (static for the run).
        attr: The non-key attribute the update rewrites.
        fallback: Target to use instead once ``table`` is swapped away.
    """

    table: str
    keys: List[Tuple]
    attr: str
    fallback: Optional["UpdateTarget"] = None


@dataclass
class Workload:
    """Workload mix definition.

    Attributes:
        source_targets: Update targets on the transformation's source
            table(s).
        dummy_target: The dummy table absorbing the rest of the updates.
        source_fraction: Probability that an update hits a source target
            (the paper's "x% updates on T").
        updates_per_txn: Updates per transaction (paper: 10).
    """

    source_targets: List[UpdateTarget]
    dummy_target: UpdateTarget
    source_fraction: float = 0.2
    updates_per_txn: int = 10

    def plan_txn(self, rng: random.Random) -> List[UpdateTarget]:
        """Pick the target of each update in one transaction."""
        plan = []
        for _ in range(self.updates_per_txn):
            if self.source_targets and \
                    rng.random() < self.source_fraction:
                plan.append(rng.choice(self.source_targets))
            else:
                plan.append(self.dummy_target)
        return plan


class Client:
    """One closed-loop client."""

    def __init__(self, client_id: int, sim: Simulator, server: Server,
                 db: Database, workload: Workload,
                 metrics: MetricsCollector, rng: random.Random) -> None:
        self.client_id = client_id
        self.sim = sim
        self.server = server
        self.db = db
        self.workload = workload
        self.metrics = metrics
        self.rng = rng
        self.config: ServerConfig = server.config
        self.txn = None
        self._plan: List[UpdateTarget] = []
        self._op_index = 0
        self._txn_start = 0.0
        self._parked = False
        self._stopped = False

    # -- life cycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin issuing transactions (staggered by a small jitter)."""
        self.sim.schedule(self.rng.random() * self.config.net_delay_ms,
                          self._new_txn)

    def stop(self) -> None:
        """Cease after the current operation resolves."""
        self._stopped = True

    def _new_txn(self) -> None:
        if self._stopped:
            return
        self._plan = self.workload.plan_txn(self.rng)
        self._op_index = 0
        self.txn = None
        self._txn_start = self.sim.now
        self._send_current(self.config.net_delay_ms)

    # -- operation submission ------------------------------------------------------

    def _send_current(self, delay: float) -> None:
        if self._stopped:
            return
        is_commit = self._op_index >= len(self._plan)
        service = self.config.txn_overhead_ms if is_commit \
            else self.config.op_service_ms
        job = Job(service=service, execute=self._execute_current)
        self.sim.schedule(delay, lambda: self.server.submit(job))

    def _execute_current(self) -> float:
        """Run the current operation against the engine (at the server)."""
        triggers_before = self.db.stats["trigger"]
        try:
            if self.txn is None:
                self.txn = self.db.begin(self.sim.now)
            if self._op_index >= len(self._plan):
                self.db.commit(self.txn)
                self._finish_txn()
            else:
                target = self._resolve_target(self._plan[self._op_index])
                key = self.rng.choice(target.keys)
                value = self.rng.random()
                self.db.update(self.txn, target.table, key,
                               {target.attr: value})
                self._op_index += 1
                self._send_current(2 * self.config.net_delay_ms)
        except LockWaitError:
            self._parked = True
        except DeadlockError:
            self.metrics.record_abort(deadlock=True)
            if self.txn is not None:
                self.db.abort(self.txn)
            self.sim.schedule(2 * self.config.net_delay_ms, self._new_txn)
        except TransactionAbortedError:
            # Doomed by a non-blocking-abort synchronization (the engine
            # already rolled us back) -- start over on the new schema.
            self.metrics.record_abort()
            self.sim.schedule(2 * self.config.net_delay_ms, self._new_txn)
        except NoSuchRowError:
            # The sampled key vanished (not expected with update-only
            # workloads; tolerated for robustness).
            self._op_index += 1
            self._send_current(2 * self.config.net_delay_ms)
        return (self.db.stats["trigger"] - triggers_before) * \
            self.config.trigger_op_ms

    def _resolve_target(self, target: UpdateTarget) -> UpdateTarget:
        while True:
            try:
                self.db._resolve(self.txn, target.table)
                return target
            except NoSuchTableError:
                if target.fallback is None:
                    raise
                target = target.fallback
            except LockWaitError:
                # Blocked table (blocking-commit sync): treat like any
                # other wait -- but the wait was registered against the
                # blocked list, so just re-raise to park.
                raise

    def _finish_txn(self) -> None:
        end = self.sim.now + self.config.net_delay_ms
        self.metrics.record_txn(self._txn_start, end)
        self.txn = None
        self.sim.schedule(2 * self.config.net_delay_ms, self._new_txn)

    # -- wake-up ----------------------------------------------------------------------

    def wake(self) -> None:
        """Retry the parked operation (lock granted / latch released)."""
        if self._parked:
            self._parked = False
            self._send_current(0.0)


class ClientPool:
    """All clients of a run, plus the engine wake-channel subscription."""

    def __init__(self, sim: Simulator, server: Server, db: Database,
                 workload: Workload, metrics: MetricsCollector,
                 n_clients: int, seed: int = 0) -> None:
        self.clients: List[Client] = [
            Client(i, sim, server, db, workload, metrics,
                   random.Random((seed << 20) ^ (i * 7919 + 13)))
            for i in range(n_clients)
        ]
        self._db = db
        db.on_wake = self._on_wake

    def start(self) -> None:
        """Start every client."""
        for client in self.clients:
            client.start()

    def stop(self) -> None:
        """Stop every client."""
        for client in self.clients:
            client.stop()

    def _on_wake(self, txn_ids: List[int]) -> None:
        wanted = set(txn_ids)
        for client in self.clients:
            if client.txn is not None and client.txn.txn_id in wanted:
                client.wake()
            elif client._parked and client.txn is None:
                # Parked before the transaction even began (blocked table).
                client.wake()
