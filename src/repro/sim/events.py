"""Deterministic discrete-event simulator core.

A minimal calendar queue: callbacks scheduled at virtual times, executed
in (time, insertion) order.  Everything in :mod:`repro.sim` -- clients,
the server, phase pollers -- runs on one :class:`Simulator` instance, so a
whole experiment is a single-threaded, seed-reproducible computation.

Virtual time is in **milliseconds**, matching the paper's reporting units
(its synchronization latch is "less than 1 ms").
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Simulator:
    """Virtual clock plus event calendar."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._stopped = False

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), fn))

    def schedule_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at an absolute virtual time (>= now)."""
        self.schedule(max(0.0, time - self.now), fn)

    @property
    def pending(self) -> int:
        """Number of scheduled events."""
        return len(self._queue)

    def stop(self) -> None:
        """Make the current ``run_until`` return after this event."""
        self._stopped = True

    def run_until(self, t_end: float) -> None:
        """Execute events in order until the clock passes ``t_end``.

        The clock is left at ``t_end`` (or at the stop point) so repeated
        calls compose into one continuous timeline.
        """
        self._stopped = False
        while self._queue and not self._stopped:
            time, _seq, fn = self._queue[0]
            if time > t_end:
                break
            heapq.heappop(self._queue)
            self.now = time
            fn()
        if not self._stopped:
            self.now = max(self.now, t_end)

    def run_while(self, condition: Callable[[], bool],
                  t_max: float) -> None:
        """Execute events while ``condition()`` holds, up to ``t_max``."""
        self._stopped = False
        while self._queue and not self._stopped and condition():
            time, _seq, fn = self._queue[0]
            if time > t_max:
                break
            heapq.heappop(self._queue)
            self.now = time
            fn()
