"""Simulated server: one processor shared by user operations and the
transformation background process.

This is the substitution for the paper's testbed (see DESIGN.md): the
prototype's server node is modeled as a single processor with a FIFO queue
of user operations and an attached *background process* (a transformation
or baseline exposing ``step(budget)``).  The scheduler implements exactly
the knob the paper evaluates -- the transformation **priority** p:

* the transformation is throttled to a target share p of server capacity
  -- the share is both a guarantee (it overtakes queued user work while
  below p, which is what lets it keep up at high load) and a cap (it
  self-throttles beyond p even on an idle server, the conservative
  behaviour of a deliberately low-priority reorganizer).  Completion time
  is therefore ~ work / (p * capacity) and propagation diverges when p
  falls below the relevant-log generation rate, reproducing the hyperbola
  and divergence threshold of Figure 4(d);
* interference grows with workload at fixed p: at low utilization the
  stolen share comes out of idle capacity and only the quantum-granularity
  head-of-line blocking is felt, while near saturation the full p comes
  out of user throughput (Figures 4(a)(b));
* while the transformation is in its **synchronization** phase, the
  background process preempts the queue (the latch is the critical
  section; the paper's "< 1 ms" claim assumes the final propagation is not
  itself descheduled).

Service times are configured in :class:`ServerConfig`; defaults are
loosely calibrated to the paper's era (tens of microseconds per in-memory
record operation, 100 us one-way network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs import NULL_METRICS, Metrics
from repro.sim.events import Simulator
from repro.transform.base import Phase


@dataclass
class ServerConfig:
    """Timing parameters of the simulated node.

    Attributes:
        op_service_ms: Server time for one record operation (update/read).
        txn_overhead_ms: Server time for begin+commit bookkeeping (charged
            with the commit operation, includes the log force).
        net_delay_ms: One-way client-to-server delay.
        bg_population_cost_ms: Server time per initial-population unit
            (one source row scanned, joined/split and inserted -- close to
            a user operation's cost).
        bg_propagation_cost_ms: Server time per log-propagation unit (one
            applied log record; skipped records cost a quarter unit -- see
            ``Transformation.SKIP_UNIT_COST``).  Redo is a tight loop over
            in-memory records, several times cheaper than a full user
            operation with its locking, logging and network handling.
        bg_batch_units: Background units bundled into one scheduling
            quantum.  This is the background process's *preemption
            granularity*: a user operation arriving mid-quantum waits for
            it, so it must stay comparable to one operation's service time
            or idle-capacity background work would inflict head-of-line
            blocking far beyond the configured priority (and invert the
            paper's workload/interference trend).
        trigger_op_ms: Extra service charged per trigger invocation the
            operation fired (Ronström baseline).
    """

    op_service_ms: float = 0.020
    txn_overhead_ms: float = 0.020
    net_delay_ms: float = 0.100
    bg_population_cost_ms: float = 0.008
    bg_propagation_cost_ms: float = 0.002
    bg_batch_units: float = 1.0
    trigger_op_ms: float = 0.015


@dataclass
class Job:
    """One user operation queued at the server."""

    service: float
    execute: Callable[[], float]
    """Runs the operation at completion time; returns *extra* service
    time discovered during execution (e.g. trigger work), charged to the
    server before the next dispatch."""


class Server:
    """Single-processor FIFO server with a priority-shared background task."""

    def __init__(self, sim: Simulator, config: ServerConfig,
                 metrics: Optional[Metrics] = None) -> None:
        self.sim = sim
        self.config = config
        #: Observability registry (``sim.user.*``, ``sim.bg.*``); the
        #: no-op singleton by default.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._queue: List[Job] = []
        self._busy = False
        self.user_busy_ms = 0.0
        self.bg_busy_ms = 0.0
        self._bg_attached_at = 0.0
        self.background = None
        self.priority = 0.0
        #: Called when the background process finishes (reaches done).
        self.on_background_done: Optional[Callable[[], None]] = None
        self._bg_done_fired = False

    # -- background attachment ------------------------------------------------

    def set_background(self, stepper, priority: float) -> None:
        """Attach a transformation/baseline as the background process.

        Args:
            stepper: Object with ``step(budget) -> StepReport`` and
                ``done`` / ``phase`` attributes.
            priority: Fraction of server capacity granted while user work
                is queued (the paper's transformation priority).
        """
        if not 0.0 <= priority < 1.0:
            raise ValueError("priority must be in [0, 1)")
        self.background = stepper
        self.priority = priority
        self._bg_done_fired = False
        self._bg_attached_at = self.sim.now
        self.bg_busy_ms = 0.0
        self._dispatch()

    def _bg_has_work(self) -> bool:
        return self.background is not None and not self.background.done \
            and self.background.phase is not Phase.ABORTED

    def _bg_urgent(self) -> bool:
        """The latched critical section preempts user work.

        Only while the synchronization holds its latch (``sync_urgent``);
        a waiting synchronization (blocking commit's drain) must NOT
        preempt -- it is waiting for the very transactions it would starve.
        """
        return self._bg_has_work() and \
            self.background.phase is Phase.SYNCHRONIZING and \
            getattr(self.background, "sync_urgent", True)

    # -- job flow ----------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Queue one user operation."""
        self._queue.append(job)
        self._dispatch()

    def kick(self) -> None:
        """Re-examine the queues (e.g. after new background work appears)."""
        self._dispatch()

    def _dispatch(self) -> None:
        if self._busy:
            return
        if self._bg_urgent():
            self._start_background()
            return
        serve_bg = self._should_serve_background()
        if serve_bg:
            self._start_background()
            return
        if self._queue:
            self._start_user(self._queue.pop(0))
            return
        if self._bg_has_work():
            # Idle but over the share target: self-throttle.  Re-examine
            # when the achieved share decays back to the target.
            wake_at = self._bg_attached_at + \
                self.bg_busy_ms / max(self.priority, 1e-6)
            self.sim.schedule(max(wake_at - self.sim.now, 1e-3),
                              self.kick)

    def _should_serve_background(self) -> bool:
        """Whether the background process should run now.

        The priority is a capacity-share *target*: the background process
        runs whenever its achieved share of wall time since attachment is
        below the target (even overtaking queued user work -- the
        guarantee that lets the propagator keep up, Section 3.3), and
        self-throttles above it (even on an idle server -- the
        conservative cap of a low-priority reorganizer, which is what
        makes completion time scale as work / priority in Figure 4(d)).
        """
        if not self._bg_has_work():
            return False
        elapsed = self.sim.now - self._bg_attached_at
        if elapsed <= 0:
            return True
        return self.bg_busy_ms / elapsed < self.priority

    def _start_user(self, job: Job) -> None:
        self._busy = True

        def complete() -> None:
            extra = job.execute() or 0.0
            duration = job.service + extra
            self.user_busy_ms += duration
            if self.metrics.enabled:
                self.metrics.inc("sim.user.ops")
                self.metrics.observe("sim.user.service_ms", duration)
                self.metrics.observe("sim.queue_len", len(self._queue))
            if extra > 0:
                # Trigger work discovered during execution extends the
                # operation; model it as additional busy time.
                self.sim.schedule(extra, self._finish_dispatch)
            else:
                self._finish_dispatch()

        self.sim.schedule(job.service, complete)

    def _finish_dispatch(self) -> None:
        self._busy = False
        self._dispatch()

    def _start_background(self) -> None:
        self._busy = True
        budget = self.config.bg_batch_units

        def complete() -> None:
            report = self.background.step(budget)
            cost = self.config.bg_population_cost_ms \
                if report.phase is Phase.POPULATING \
                else self.config.bg_propagation_cost_ms
            duration = max(report.units, 0.25) * cost
            self.bg_busy_ms += duration
            if self.metrics.enabled:
                self.metrics.inc("sim.bg.quanta")
                self.metrics.inc("sim.bg.units", report.units)
                self.metrics.observe("sim.bg.quantum_ms", duration)
                elapsed = self.sim.now - self._bg_attached_at
                if elapsed > 0:
                    # Achieved capacity share vs. the priority target --
                    # the gauge trajectory shows throttling converge.
                    self.metrics.set_gauge("sim.bg.share",
                                           self.bg_busy_ms / elapsed)
            if report.done and not self._bg_done_fired:
                self._bg_done_fired = True
                if self.on_background_done is not None:
                    self.on_background_done()
            self.sim.schedule(duration, self._finish_dispatch)

        # The batch's duration depends on the work actually done, which we
        # only know after running step(); model it as: run the step now
        # (state change is logically at batch end) and occupy the server
        # for the corresponding time.
        complete()

    # -- introspection -------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Number of queued (not yet started) user operations."""
        return len(self._queue)

    def utilization(self) -> float:
        """Fraction of elapsed time the server spent busy."""
        if self.sim.now <= 0:
            return 0.0
        return (self.user_busy_ms + self.bg_busy_ms) / self.sim.now
