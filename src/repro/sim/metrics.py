"""Throughput and response-time collection.

The paper reports *relative* throughput and response time: performance
during the schema change divided by performance without it, at the same
workload.  The collector therefore measures absolute numbers over an
explicit window; :mod:`repro.sim.experiments` pairs a baseline run with a
treatment run and forms the ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class MetricsCollector:
    """Records transaction completions inside a measurement window.

    Args:
        bucket_ms: When set, additionally maintain a *time series* of
            per-bucket completion counts and response times over the whole
            run (not just the window), for observability output.  Off by
            default -- the series costs a dict update per completion.
        clock: Timestamp source the bucket series is anchored to -- pass
            the shared observability clock (``metrics.now`` or
            ``lambda: sim.now``) so virtual-time and wall-time runs
            produce comparable, origin-relative bucket indices.  Without
            one, the origin is 0.0 (the simulator's epoch).
    """

    def __init__(self, bucket_ms: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.window_start: Optional[float] = None
        self.window_end: Optional[float] = None
        self._responses: List[float] = []
        self.committed = 0
        self.aborted = 0
        self.deadlocks = 0
        self.total_committed = 0
        if bucket_ms is not None and bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        self.bucket_ms = bucket_ms
        #: Bucket time zero: completions are bucketed by their offset from
        #: this origin, so index 0 is "the run's first bucket" on any clock.
        self.origin = clock() if clock is not None else 0.0
        #: bucket index -> [completions, sum of response times]
        self._buckets: Dict[int, List[float]] = {}

    # -- window control -----------------------------------------------------

    def open_window(self, now: float) -> None:
        """Start measuring; transactions *started* after this count."""
        if self.window_start is None:
            self.window_start = now

    def close_window(self, now: float) -> None:
        """Stop measuring."""
        if self.window_start is not None and self.window_end is None:
            self.window_end = now

    @property
    def window_open(self) -> bool:
        """Whether a window is currently collecting."""
        return self.window_start is not None and self.window_end is None

    def window_length(self) -> float:
        """Length of the (closed) measurement window."""
        if self.window_start is None or self.window_end is None:
            return 0.0
        return self.window_end - self.window_start

    # -- recording --------------------------------------------------------------

    def record_txn(self, start: float, end: float) -> None:
        """One committed transaction (client-observed start/end times).

        Every completion inside the window counts toward throughput;
        response times are only recorded for transactions that started
        inside it (so in-flight warmup transactions do not skew them).
        """
        self.total_committed += 1
        if self.bucket_ms is not None:
            bucket = self._buckets.setdefault(
                int((end - self.origin) // self.bucket_ms), [0, 0.0])
            bucket[0] += 1
            bucket[1] += end - start
        if self.window_open:
            self.committed += 1
            if start >= self.window_start:
                self._responses.append(end - start)

    def record_abort(self, deadlock: bool = False) -> None:
        """One aborted transaction attempt."""
        if self.window_open:
            self.aborted += 1
            if deadlock:
                self.deadlocks += 1

    # -- results ------------------------------------------------------------------

    def throughput(self) -> float:
        """Committed transactions per millisecond inside the window."""
        length = self.window_length()
        return self.committed / length if length > 0 else 0.0

    def mean_response(self) -> float:
        """Mean response time (ms) of window transactions."""
        if not self._responses:
            return 0.0
        return sum(self._responses) / len(self._responses)

    def percentile_response(self, pct: float) -> float:
        """Response-time percentile (ms) of window transactions."""
        if not self._responses:
            return 0.0
        ordered = sorted(self._responses)
        index = min(len(ordered) - 1,
                    max(0, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[index]

    def series(self) -> List[Dict[str, float]]:
        """Per-bucket throughput / response series (empty if not enabled).

        Each point: bucket start time ``t`` (ms, relative to the origin),
        committed count, throughput (txns/ms) and mean response time (ms)
        of the bucket.
        """
        if self.bucket_ms is None:
            return []
        points = []
        for index in sorted(self._buckets):
            count, response_total = self._buckets[index]
            points.append({
                "t": index * self.bucket_ms,
                "committed": count,
                "throughput": count / self.bucket_ms,
                "mean_response": response_total / count if count else 0.0,
            })
        return points

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary of the collected window (and series)."""
        return {
            "window_ms": self.window_length(),
            "committed": self.committed,
            "aborted": self.aborted,
            "deadlocks": self.deadlocks,
            "throughput": self.throughput(),
            "mean_response": self.mean_response(),
            "p95_response": self.percentile_response(95),
            "series": self.series(),
        }


@dataclass
class RunResult:
    """Outcome of one simulated run."""

    throughput: float
    mean_response: float
    p95_response: float
    committed: int
    aborted: int
    #: Whether/when the background transformation completed (virtual ms
    #: from its attachment); ``None`` if it never finished.
    completion_time: Optional[float] = None
    #: Total virtual time the source tables spent latched/blocked.
    blocked_time: float = 0.0
    #: Extra details (phase the window measured, priority used, ...).
    info: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-friendly rendering (info values must be serializable)."""
        return {
            "throughput": self.throughput,
            "mean_response": self.mean_response,
            "p95_response": self.p95_response,
            "committed": self.committed,
            "aborted": self.aborted,
            "completion_time": self.completion_time,
            "blocked_time": self.blocked_time,
            "info": dict(self.info),
        }


@dataclass
class RelativeResult:
    """Treatment-over-baseline ratios, the paper's reporting unit."""

    workload_pct: float
    relative_throughput: float
    relative_response: float
    baseline: RunResult
    treatment: RunResult

    def __str__(self) -> str:
        return (f"workload {self.workload_pct:5.1f}%: "
                f"rel-throughput {self.relative_throughput:.4f}, "
                f"rel-response {self.relative_response:.4f}")
