"""Experiment harness reproducing the paper's evaluation (Section 6).

The harness pairs runs -- one without and one with the schema change, at
identical workload and seed -- and reports the *relative* throughput and
response time the paper plots in Figure 4.  Scenario builders construct
the paper's two setups:

* **split**: 50 000 rows in T, split into ~50 000 R rows and ~20 000 S
  rows (scaled down by default; set ``REPRO_FULL_SCALE=1`` for the paper's
  sizes);
* **FOJ**: 50 000 rows in R joined with 20 000 rows in S.

Workload percentages follow the paper's definition: 100% is the client
count that maximizes baseline throughput (found by calibration), and x%
means x% of that many clients.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.session import Session, bulk_load
from repro.faults import FaultInjector
from repro.obs import Metrics
from repro.relational.spec import FojSpec, SplitSpec
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector, RelativeResult, RunResult
from repro.sim.server import Server, ServerConfig
from repro.sim.workload import ClientPool, UpdateTarget, Workload
from repro.storage.schema import TableSchema
from repro.transform.analysis import (
    FixedIterationsPolicy,
    RemainingRecordsPolicy,
)
from repro.transform.base import Phase, SyncStrategy
from repro.transform.foj import FojTransformation
from repro.transform.split import SplitTransformation


def scale_factor() -> float:
    """Scale of table sizes: 1.0 reproduces the paper's row counts.

    Defaults to 0.1 (10x smaller, shape-preserving in the capacity-sharing
    model); set the environment variable ``REPRO_FULL_SCALE=1`` for the
    paper's full sizes.
    """
    if os.environ.get("REPRO_FULL_SCALE", "").strip() in ("1", "true"):
        return 1.0
    override = os.environ.get("REPRO_SCALE", "").strip()
    if override:
        return float(override)
    return 0.1


@dataclass
class Scenario:
    """A fully built database + workload + transformation factory."""

    db: Database
    workload: Workload
    tf_factory: Callable[[], object]
    source_tables: Tuple[str, ...]


def _build_dummy(db: Database, rows: int) -> UpdateTarget:
    db.create_table(TableSchema("dummy", ["id", "payload"],
                                primary_key=["id"]))
    bulk_load(db, "dummy", [{"id": i, "payload": 0.0} for i in range(rows)])
    return UpdateTarget("dummy", [(i,) for i in range(rows)], "payload")


def build_split_scenario(seed: int = 0, source_fraction: float = 0.2,
                         rows: Optional[int] = None,
                         dummy_rows: Optional[int] = None,
                         n_split_values: Optional[int] = None,
                         tf_kwargs: Optional[dict] = None) -> Scenario:
    """The paper's split setup: T with ``rows`` records, ~40% distinct
    split values (50 000 -> ~20 000 S records at full scale)."""
    scale = scale_factor()
    rows = rows if rows is not None else max(200, int(50_000 * scale))
    dummy_rows = dummy_rows if dummy_rows is not None \
        else max(200, int(20_000 * scale))
    n_split = n_split_values if n_split_values is not None \
        else max(20, int(rows * 0.4))
    rng = random.Random(seed)

    db = Database()
    db.create_table(TableSchema(
        "T", ["id", "name", "grp", "info"], primary_key=["id"]))
    # The FD grp -> info is kept consistent by construction (one info
    # value per group), as Section 5.2 assumes.
    bulk_load(db, "T", [
        {"id": i, "name": float(i), "grp": (g := rng.randrange(n_split)),
         "info": f"g{g}"}
        for i in range(rows)
    ])
    dummy = _build_dummy(db, dummy_rows)
    spec = SplitSpec.derive(db.table("T").schema, r_name="T_r",
                            s_name="T_s", split_attr="grp",
                            s_attrs=["info"])
    keys = [(i,) for i in range(rows)]
    source = UpdateTarget(
        "T", keys, "name",
        fallback=UpdateTarget("T_r", keys, "name"))
    workload = Workload([source], dummy, source_fraction=source_fraction)
    kwargs = dict(tf_kwargs or {})

    def factory() -> SplitTransformation:
        return SplitTransformation(db, spec, **kwargs)

    return Scenario(db, workload, factory, ("T",))


def build_plan_scenario(seed: int = 0, source_fraction: float = 0.2,
                        n_emp: Optional[int] = None,
                        n_dept: Optional[int] = None,
                        dummy_rows: Optional[int] = None,
                        defaults: Optional[dict] = None) -> Scenario:
    """A chained migration plan (FOJ then split) under a live workload.

    The background work is a whole :class:`~repro.plan.MigrationPlan`
    adapted through :class:`~repro.plan.PlanStepper`: ``emp`` and
    ``dept`` are joined into ``emp_dept``, which is then split into
    ``staff`` and ``dept_info`` -- so the simulated server crosses *two*
    synchronization points in one run.  Update targets fall back along
    the chain as each swap retires their table.
    """
    from repro.plan import MigrationPlan, MigrationStep, PlanStepper

    scale = scale_factor()
    n_emp = n_emp if n_emp is not None else max(200, int(20_000 * scale))
    n_dept = n_dept if n_dept is not None else max(20, int(n_emp * 0.1))
    dummy_rows = dummy_rows if dummy_rows is not None \
        else max(200, int(20_000 * scale))
    rng = random.Random(seed)

    db = Database()
    db.create_table(TableSchema("emp", ["eid", "ename", "dept_id"],
                                primary_key=["eid"]))
    db.create_table(TableSchema("dept", ["did", "dname", "floor"],
                                primary_key=["did"]))
    bulk_load(db, "emp", [
        {"eid": i, "ename": float(i),
         "dept_id": rng.randrange(int(n_dept * 1.2))}
        for i in range(n_emp)
    ])
    bulk_load(db, "dept", [
        {"did": d, "dname": f"d{d}", "floor": float(d)}
        for d in range(n_dept)
    ])
    dummy = _build_dummy(db, dummy_rows)
    plan = MigrationPlan(
        plan_id=f"sim.chain.{seed}",
        steps=(
            MigrationStep(step_id="join", operator="foj",
                          params={"r_name": "emp", "s_name": "dept",
                                  "target_name": "emp_dept",
                                  "join_attr_r": "dept_id",
                                  "join_attr_s": "did"}),
            MigrationStep(step_id="split", operator="split",
                          params={"source_name": "emp_dept",
                                  "r_name": "staff", "s_name": "dept_info",
                                  "split_attr": "dept_id",
                                  "s_attrs": ["dname", "floor"]}),
        ),
        defaults=dict(defaults or {}))

    emp_keys = [(i,) for i in range(n_emp)]
    dept_keys = [(d,) for d in range(n_dept)]
    # ``ename`` stays an R-side attribute through both steps, so it is a
    # safe update column in every intermediate schema; ``floor`` is only
    # written through ``dept`` (keeping the dept_id -> floor dependency
    # consistent for the split) and falls back to the R side after.
    staff_t = UpdateTarget("staff", emp_keys, "ename")
    emp_target = UpdateTarget(
        "emp", emp_keys, "ename",
        fallback=UpdateTarget("emp_dept", emp_keys, "ename",
                              fallback=staff_t))
    dept_target = UpdateTarget(
        "dept", dept_keys, "floor",
        fallback=UpdateTarget("emp_dept", emp_keys, "ename",
                              fallback=staff_t))
    workload = Workload([emp_target, dept_target], dummy,
                        source_fraction=source_fraction)

    def factory() -> PlanStepper:
        return PlanStepper(db, plan)

    return Scenario(db, workload, factory, ("emp", "dept", "emp_dept"))


def build_foj_scenario(seed: int = 0, source_fraction: float = 0.2,
                       n_r: Optional[int] = None,
                       n_s: Optional[int] = None,
                       dummy_rows: Optional[int] = None,
                       tf_kwargs: Optional[dict] = None) -> Scenario:
    """The paper's FOJ setup: 50 000 rows in R, 20 000 in S (scaled)."""
    scale = scale_factor()
    n_r = n_r if n_r is not None else max(200, int(50_000 * scale))
    n_s = n_s if n_s is not None else max(100, int(20_000 * scale))
    dummy_rows = dummy_rows if dummy_rows is not None \
        else max(200, int(20_000 * scale))
    rng = random.Random(seed)

    db = Database()
    db.create_table(TableSchema("R", ["a", "b", "c"], primary_key=["a"]))
    db.create_table(TableSchema("S", ["c", "d", "e"], primary_key=["c"]))
    bulk_load(db, "R", [
        {"a": i, "b": float(i), "c": rng.randrange(int(n_s * 1.2))}
        for i in range(n_r)
    ])
    bulk_load(db, "S", [
        {"c": c, "d": float(c), "e": f"s{c}"} for c in range(n_s)
    ])
    dummy = _build_dummy(db, dummy_rows)
    spec = FojSpec.derive(db.table("R").schema, db.table("S").schema,
                          target_name="T", join_attr_r="c", join_attr_s="c")
    r_keys = [(i,) for i in range(n_r)]
    s_keys = [(c,) for c in range(n_s)]
    r_target = UpdateTarget("R", r_keys, "b",
                            fallback=UpdateTarget("T", r_keys, "b"))
    s_target = UpdateTarget("S", s_keys, "d",
                            fallback=UpdateTarget("T", r_keys, "d"))
    workload = Workload([r_target, s_target], dummy,
                        source_fraction=source_fraction)
    kwargs = dict(tf_kwargs or {})

    def factory() -> FojTransformation:
        return FojTransformation(db, spec, **kwargs)

    return Scenario(db, workload, factory, ("R", "S"))


# ---------------------------------------------------------------------------
# Single runs
# ---------------------------------------------------------------------------


@dataclass
class RunSettings:
    """Knobs of one simulated run."""

    n_clients: int = 8
    warmup_ms: float = 20.0
    window_ms: float = 150.0
    t_max_ms: float = 20_000.0
    priority: float = 0.05
    with_transformation: bool = True
    #: Measure only while the transformation is in this phase (None:
    #: window opens when the transformation is attached).
    measure_phase: Optional[Phase] = None
    #: Open the window only after the transformation has spent this long
    #: in ``measure_phase`` -- used to measure *steady-state* propagation
    #: (Figure 4(c)) after the post-population catch-up transient.
    measure_phase_delay_ms: float = 0.0
    #: Return as soon as the measurement window closes instead of waiting
    #: for the transformation to finish.
    stop_after_window: bool = True
    server: ServerConfig = field(default_factory=ServerConfig)
    seed: int = 0
    #: Attach an observability registry (virtual-time clock) to the
    #: database, server and transformation; its snapshot is returned in
    #: ``RunResult.info["obs"]``.  Off by default: observation costs a
    #: few percent of real runtime and the paired-run ratios don't need it.
    observe: bool = False
    #: Bucket width (virtual ms) of the throughput/response time series
    #: collected over the whole run; ``None`` disables the series.
    series_bucket_ms: Optional[float] = None
    #: Fault injector to attach to the scenario database (after the
    #: builder's bulk load, like ``observe``); ``None`` leaves the run on
    #: the zero-overhead ``NULL_FAULTS`` path.  Lets experiments drive
    #: abort storms or starvation delays through the simulated workload.
    faults: Optional[FaultInjector] = None


def run_once(scenario_builder: Callable[[int], Scenario],
             settings: RunSettings) -> RunResult:
    """Execute one run and collect its metrics."""
    scenario = scenario_builder(settings.seed)
    sim = Simulator()
    obs: Optional[Metrics] = None
    if settings.observe:
        # Virtual-time clock: latch hold times etc. come out in simulated
        # milliseconds.  Attached after the builder's bulk load, so the
        # counters cover only the measured run.
        obs = Metrics(enabled=True, clock=lambda: sim.now)
        scenario.db.attach_metrics(obs)
    if settings.faults is not None:
        scenario.db.attach_faults(settings.faults)
    server = Server(sim, settings.server, metrics=obs)
    # Anchor the bucket series to the shared obs clock so virtual-time
    # and wall-time runs yield comparable, origin-relative bucket indices.
    metrics = MetricsCollector(bucket_ms=settings.series_bucket_ms,
                               clock=None if obs is None else obs.now)
    run_span = None if obs is None else obs.begin_span(
        "sim.run", n_clients=settings.n_clients,
        with_transformation=settings.with_transformation,
        priority=settings.priority)
    pool = ClientPool(sim, server, scenario.db, scenario.workload, metrics,
                      settings.n_clients, seed=settings.seed)
    pool.start()
    sim.run_until(settings.warmup_ms)

    state: Dict[str, object] = {
        "tf": None, "attach_time": None, "completion": None,
        "blocked": 0.0, "last_poll": sim.now, "window_deadline": None,
    }

    if settings.with_transformation:
        tf = scenario.tf_factory()
        state["tf"] = tf
        state["attach_time"] = sim.now
        if run_span is not None:
            # Nest the transformation's span tree under this run.
            tf._span_parent = run_span

        def on_done() -> None:
            state["completion"] = sim.now - state["attach_time"]
            # With an unbounded window ("measure the whole change"), the
            # window ends when the change ends; a finite window may
            # deliberately extend past completion.
            if metrics.window_open and settings.measure_phase is None \
                    and settings.window_ms > settings.t_max_ms:
                metrics.close_window(sim.now)

        server.on_background_done = on_done
        server.set_background(tf, settings.priority)
        if settings.measure_phase is None:
            metrics.open_window(sim.now)
            state["window_deadline"] = sim.now + settings.window_ms
    else:
        metrics.open_window(sim.now)
        state["window_deadline"] = sim.now + settings.window_ms

    poll_interval = 0.25

    def poll() -> None:
        tf = state["tf"]
        now = sim.now
        if tf is not None:
            # Accumulate latched/blocked time on the source tables.
            latched = any(
                scenario.db.locks.is_latched(
                    scenario.db.catalog.get(name).uid)
                or scenario.db.catalog.is_blocked(name)
                for name in scenario.source_tables
                if scenario.db.catalog.exists(name)
            )
            if latched:
                state["blocked"] += now - state["last_poll"]
            if settings.measure_phase is not None:
                if tf.phase is settings.measure_phase:
                    if state.get("phase_entered") is None:
                        state["phase_entered"] = now
                    if not metrics.window_open and \
                            metrics.window_start is None and \
                            now - state["phase_entered"] >= \
                            settings.measure_phase_delay_ms:
                        metrics.open_window(now)
                        state["window_deadline"] = now + settings.window_ms
                elif metrics.window_open:
                    metrics.close_window(now)
        if metrics.window_open and state["window_deadline"] is not None \
                and now >= state["window_deadline"]:
            metrics.close_window(now)
        state["last_poll"] = now
        if not _run_finished():
            sim.schedule(poll_interval, poll)

    def _run_finished() -> bool:
        if metrics.window_end is None:
            return False
        if settings.stop_after_window:
            return True
        tf = state["tf"]
        return tf is None or state["completion"] is not None

    sim.schedule(poll_interval, poll)
    sim.run_while(lambda: not _run_finished(), settings.t_max_ms)
    metrics.close_window(sim.now)
    pool.stop()
    scenario.db.on_wake = None

    tf = state["tf"]
    if obs is not None:
        obs.end_span(run_span)
    return RunResult(
        throughput=metrics.throughput(),
        mean_response=metrics.mean_response(),
        p95_response=metrics.percentile_response(95),
        committed=metrics.committed,
        aborted=metrics.aborted,
        completion_time=state["completion"],
        blocked_time=state["blocked"],
        info={
            "max_response": metrics.percentile_response(100),
            "p99_response": metrics.percentile_response(99),
            "phase": None if tf is None else tf.phase.value,
            "priority": settings.priority,
            "n_clients": settings.n_clients,
            "window_ms": metrics.window_length(),
            "tf_stats": None if tf is None else dict(
                getattr(tf, "stats", {}) or {}),
            "lock_waits": scenario.db.locks.wait_count,
            "lock_deadlocks": scenario.db.locks.deadlock_count,
            "wal_records": len(scenario.db.log),
            "obs": None if obs is None else obs.snapshot(),
            # Per-phase interference attribution: who user transactions
            # waited on, in virtual ms (see repro.obs.blame).  The split
            # is exact -- by_role sums to total_wait_ms -- so consumers
            # can assert the breakdown against the aggregate.
            "blame": None if obs is None else obs.blame.snapshot(),
            "spans": None if obs is None else obs.spans.tree(),
            "convergence": None if getattr(tf, "convergence", None) is None
            else tf.convergence.series(),
            "shard_convergence": None if tf is None
            else tf.shard_convergence() or None,
            "shard_summary": None if tf is None
            else tf.shard_summary() or None,
            "series": metrics.series(),
        },
    )


# ---------------------------------------------------------------------------
# Calibration: the paper's "100% workload"
# ---------------------------------------------------------------------------

_CALIBRATION_CACHE: Dict[tuple, int] = {}


def calibrate_max_workload(scenario_builder: Callable[[int], Scenario],
                           server: Optional[ServerConfig] = None,
                           seed: int = 0, cache_key: object = None) -> int:
    """Find the client count maximizing baseline throughput (= 100%).

    Runs short baseline simulations at increasing client counts and
    returns the smallest count reaching 98% of the best throughput seen.
    """
    key = (cache_key, seed) if cache_key is not None else None
    if key is not None and key in _CALIBRATION_CACHE:
        return _CALIBRATION_CACHE[key]
    server = server or ServerConfig()
    best_throughput = 0.0
    results: List[Tuple[int, float]] = []
    for n in (1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 26, 32, 40):
        settings = RunSettings(n_clients=n, warmup_ms=10.0, window_ms=60.0,
                               with_transformation=False, server=server,
                               seed=seed)
        result = run_once(scenario_builder, settings)
        # Stop once adding clients stops improving throughput (saturation).
        if results and result.throughput < best_throughput * 1.01:
            results.append((n, result.throughput))
            best_throughput = max(best_throughput, result.throughput)
            break
        results.append((n, result.throughput))
        best_throughput = max(best_throughput, result.throughput)
    n_max = min(n for n, thr in results if thr >= 0.98 * best_throughput)
    if key is not None:
        _CALIBRATION_CACHE[key] = n_max
    return n_max


def clients_for_workload(n_max: int, workload_pct: float) -> int:
    """Client count for a workload percentage (paper's definition)."""
    return max(1, int(round(n_max * workload_pct / 100.0)))


# ---------------------------------------------------------------------------
# Paired (relative) runs -- the paper's reporting unit
# ---------------------------------------------------------------------------


def run_relative(scenario_builder: Callable[[int], Scenario],
                 workload_pct: float, n_max: int,
                 settings: Optional[RunSettings] = None) -> RelativeResult:
    """Baseline vs. during-transformation at one workload percentage."""
    settings = settings or RunSettings()
    n_clients = clients_for_workload(n_max, workload_pct)
    base = run_once(scenario_builder,
                    replace(settings, n_clients=n_clients,
                            with_transformation=False, measure_phase=None))
    treat = run_once(scenario_builder,
                     replace(settings, n_clients=n_clients,
                             with_transformation=True))
    rel_thr = treat.throughput / base.throughput if base.throughput else 0.0
    rel_rt = treat.mean_response / base.mean_response \
        if base.mean_response else 0.0
    return RelativeResult(workload_pct, rel_thr, rel_rt, base, treat)


def keep_up_priority(baseline: RunResult, source_fraction: float,
                     updates_per_txn: int, server: ServerConfig,
                     headroom: float = 1.5) -> float:
    """Priority needed for propagation to outpace log generation.

    Section 3.3: "If more log records are produced than the propagator is
    able to process, the synchronization is never started.  If this is the
    case, the transformation should either be aborted or get higher
    priority."  The estimate converts the baseline transaction rate into
    propagation units per millisecond (applied records cost a full unit,
    skipped ones a quarter) and adds ``headroom``.
    """
    from repro.transform.base import Transformation
    txn_per_ms = baseline.throughput
    applied = txn_per_ms * updates_per_txn * source_fraction
    skipped = txn_per_ms * (
        updates_per_txn * (1.0 - source_fraction) + 3.0)
    units_per_ms = applied + skipped * Transformation.SKIP_UNIT_COST
    share = units_per_ms * server.bg_propagation_cost_ms
    return float(min(0.9, max(0.005, headroom * share)))
