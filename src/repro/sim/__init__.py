"""Discrete-event performance simulator: the evaluation substrate.

Replaces the paper's 6-node cluster testbed (see DESIGN.md, Section 2)
with a deterministic capacity-sharing model: a single simulated server
processes user operations FIFO while granting the transformation a
priority-bounded share of its capacity, plus all idle capacity for free.
"""

from repro.sim.events import Simulator
from repro.sim.experiments import (
    RunSettings,
    Scenario,
    build_foj_scenario,
    build_plan_scenario,
    build_split_scenario,
    calibrate_max_workload,
    clients_for_workload,
    keep_up_priority,
    run_once,
    run_relative,
    scale_factor,
)
from repro.sim.metrics import MetricsCollector, RelativeResult, RunResult
from repro.sim.server import Job, Server, ServerConfig
from repro.sim.workload import Client, ClientPool, UpdateTarget, Workload

__all__ = [
    "Client",
    "ClientPool",
    "Job",
    "MetricsCollector",
    "RelativeResult",
    "RunResult",
    "RunSettings",
    "Scenario",
    "Server",
    "ServerConfig",
    "Simulator",
    "UpdateTarget",
    "Workload",
    "build_foj_scenario",
    "build_plan_scenario",
    "build_split_scenario",
    "calibrate_max_workload",
    "clients_for_workload",
    "keep_up_priority",
    "run_once",
    "run_relative",
    "scale_factor",
]
