"""Append-only log manager.

The log is the single communication channel between user transactions and
the transformation framework: the framework never installs triggers or
touches user transactions; it only *reads the log* (the paper's central
design point, Section 1).  The manager therefore exposes, besides append,
cheap sequential scans starting from an arbitrary LSN.

The implementation keeps the whole log in memory (the reproduced prototype
is a main-memory DBMS).  ``flush`` is tracked for API fidelity -- commit
forces the log -- but is a no-op physically.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.faults import NULL_FAULTS, FaultInjector, register_site
from repro.obs import NULL_METRICS, Metrics
from repro.wal.records import NULL_LSN, LogRecord

#: First LSN ever assigned.  LSN 0 is reserved as the null LSN.
FIRST_LSN = 1

SITE_WAL_APPEND = register_site(
    "wal.append", "wal", "before a record is assigned an LSN and stored")
SITE_WAL_APPEND_DONE = register_site(
    "wal.append.done", "wal", "after a record is stored, before observers")
SITE_WAL_FLUSH = register_site(
    "wal.flush", "wal", "before the durability horizon advances")


class LogManager:
    """Monotonic, append-only sequence of :class:`LogRecord` objects.

    LSNs are dense integers starting at :data:`FIRST_LSN`; the record with
    LSN ``n`` lives at list index ``n - FIRST_LSN``, making ``record_at``
    O(1) and range scans allocation-free.

    All reading APIs share one LSN contract: negative LSNs are rejected
    with :class:`ValueError` (they can only come from arithmetic bugs);
    ``NULL_LSN`` (0) and LSNs past the end are in-range for *bounds* (they
    clamp / yield nothing) but not for point lookups (``record_at``
    raises :class:`IndexError`).
    """

    def __init__(self, metrics: Optional[Metrics] = None,
                 faults: Optional[FaultInjector] = None) -> None:
        self._records: List[LogRecord] = []
        self._flushed_lsn = NULL_LSN
        #: Observability registry (``wal.appends``, ``wal.flushes``,
        #: ``wal.tail_depth``); the shared no-op singleton by default.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Fault injector; the shared no-op singleton by default.
        self.faults = faults if faults is not None else NULL_FAULTS
        #: Observers called synchronously with each appended record.  Used
        #: by tests and by the simulator's accounting; the transformation
        #: framework deliberately does NOT use observers -- it polls the log
        #: like the paper's propagator.
        self.observers: List[Callable[[LogRecord], None]] = []

    # -- append ------------------------------------------------------------

    def append(self, record: LogRecord, prev_lsn: int = NULL_LSN) -> int:
        """Append ``record``, assigning its LSN; return the new LSN.

        Args:
            record: The record to append.  Its ``lsn`` must be unassigned.
            prev_lsn: Back-chain pointer to the owning transaction's
                previous record (``NULL_LSN`` if none).
        """
        if record.lsn != NULL_LSN:
            raise ValueError(f"record already appended: lsn={record.lsn}")
        self.faults.fire(SITE_WAL_APPEND, kind=record.kind)
        record.lsn = FIRST_LSN + len(self._records)
        record.prev_lsn = prev_lsn
        self._records.append(record)
        self.faults.fire(SITE_WAL_APPEND_DONE, kind=record.kind,
                         lsn=record.lsn)
        self.metrics.inc("wal.appends")
        for observer in self.observers:
            observer(record)
        return record.lsn

    def flush(self, up_to_lsn: Optional[int] = None) -> None:
        """Force the log up to ``up_to_lsn`` (default: everything).

        ``flushed_lsn`` is monotonic: a flush bounded below the current
        flushed position (a latecomer whose records a group flush already
        covered) is a no-op rather than moving the durability horizon
        backwards.  Physically a no-op in this main-memory system.
        """
        if up_to_lsn is not None and up_to_lsn < 0:
            raise ValueError(f"negative lsn: {up_to_lsn}")
        self.faults.fire(SITE_WAL_FLUSH, up_to_lsn=up_to_lsn)
        target = self.end_lsn if up_to_lsn is None \
            else min(up_to_lsn, self.end_lsn)
        if self.metrics.enabled:
            self.metrics.inc("wal.flushes")
            self.metrics.observe("wal.tail_depth",
                                 max(0, self.end_lsn - self._flushed_lsn))
        self._flushed_lsn = max(self._flushed_lsn, target)

    # -- positions ----------------------------------------------------------

    @property
    def end_lsn(self) -> int:
        """LSN of the most recently appended record (``NULL_LSN`` if empty)."""
        return NULL_LSN if not self._records else self._records[-1].lsn

    @property
    def next_lsn(self) -> int:
        """LSN that the next appended record will receive."""
        return FIRST_LSN + len(self._records)

    @property
    def flushed_lsn(self) -> int:
        """Highest LSN known to be on stable storage."""
        return self._flushed_lsn

    def __len__(self) -> int:
        return len(self._records)

    # -- reading ------------------------------------------------------------

    def record_at(self, lsn: int) -> LogRecord:
        """Return the record with the given LSN.

        Raises :class:`ValueError` for negative LSNs (arithmetic bugs)
        and :class:`IndexError` for in-domain LSNs with no record
        (``NULL_LSN``, or past the end of the log).
        """
        if lsn < 0:
            raise ValueError(f"negative lsn: {lsn}")
        index = lsn - FIRST_LSN
        if index < 0 or index >= len(self._records):
            raise IndexError(f"no log record with lsn {lsn}")
        return self._records[index]

    def scan(self, from_lsn: int = FIRST_LSN,
             to_lsn: Optional[int] = None) -> Iterator[LogRecord]:
        """Yield records with ``from_lsn <= lsn <= to_lsn`` in LSN order.

        ``to_lsn`` defaults to the current end of the log, *fixed at call
        time*: records appended while the caller iterates are not included,
        which is exactly the bounded-cycle behaviour a log-propagation
        iteration needs.  The snapshot really is taken when :meth:`scan`
        is *called*, not when iteration starts -- a generator body would
        only read ``end_lsn`` at the first ``next()``, silently widening
        the window for callers that append between creating the iterator
        and draining it (concurrent per-shard propagators do exactly
        that).

        Boundary contract: scanning an empty log yields nothing;
        ``from_lsn`` below :data:`FIRST_LSN` starts at the log head;
        ``from_lsn > end_lsn`` yields nothing; ``to_lsn`` beyond the end
        clamps to the end.  Negative bounds raise :class:`ValueError`.
        """
        if from_lsn < 0:
            raise ValueError(f"negative lsn: {from_lsn}")
        if to_lsn is not None and to_lsn < 0:
            raise ValueError(f"negative lsn: {to_lsn}")
        end = self.end_lsn if to_lsn is None else to_lsn
        start_index = max(0, from_lsn - FIRST_LSN)
        end_index = min(len(self._records), end - FIRST_LSN + 1)

        def _iterate() -> Iterator[LogRecord]:
            for index in range(start_index, end_index):
                yield self._records[index]

        return _iterate()

    def records_between(self, from_lsn: int, to_lsn: int) -> int:
        """Number of records in the closed LSN interval (for analysis)."""
        if to_lsn < from_lsn:
            return 0
        lo = max(FIRST_LSN, from_lsn)
        hi = min(self.end_lsn, to_lsn)
        return max(0, hi - lo + 1)

    def tail_length(self, after_lsn: int) -> int:
        """Number of records appended after ``after_lsn`` (analysis helper)."""
        return max(0, self.end_lsn - max(after_lsn, NULL_LSN))

    def dump(self) -> str:
        """Multi-line human-readable rendering of the whole log."""
        return "\n".join(record.describe() for record in self._records)
