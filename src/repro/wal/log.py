"""Append-only log manager.

The log is the single communication channel between user transactions and
the transformation framework: the framework never installs triggers or
touches user transactions; it only *reads the log* (the paper's central
design point, Section 1).  The manager therefore exposes, besides append,
cheap sequential scans starting from an arbitrary LSN.

The implementation keeps the whole log in memory (the reproduced prototype
is a main-memory DBMS).  Without a disk attached, ``flush`` is tracked for
API fidelity -- commit forces the log -- but is a no-op physically.  With a
:class:`~repro.wal.durable.SimulatedDisk` attached, every flush *writes*:
the unflushed records are serialized into checksummed frames
(:mod:`repro.wal.frames`), staged on the disk and synced before the
durability horizon advances, and :meth:`LogManager.from_disk` rebuilds a
log from the salvaged flushed prefix after a crash.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.faults import NULL_FAULTS, FaultInjector, register_site
from repro.obs import NULL_METRICS, Metrics
from repro.wal.frames import SEGMENT_HEADER, encode_frame
from repro.wal.records import NULL_LSN, LogRecord

#: First LSN ever assigned.  LSN 0 is reserved as the null LSN.
FIRST_LSN = 1

SITE_WAL_APPEND = register_site(
    "wal.append", "wal", "before a record is assigned an LSN and stored")
SITE_WAL_APPEND_DONE = register_site(
    "wal.append.done", "wal", "after a record is stored, before observers")
SITE_WAL_FLUSH = register_site(
    "wal.flush", "wal", "before the durability horizon advances")
SITE_WAL_APPEND_BATCH = register_site(
    "wal.append_batch", "wal",
    "before a batch of records is assigned LSNs and stored")
SITE_WAL_APPEND_BATCH_DONE = register_site(
    "wal.append_batch.done", "wal",
    "after a batch is stored, before observers see its records")
SITE_WAL_GROUP_FLUSH = register_site(
    "wal.group_flush", "wal",
    "before a coalesced (group-commit) flush advances the horizon")


@dataclass(frozen=True)
class FlushPolicy:
    """Group-commit knobs: when a requested flush may be deferred.

    A *flush request* (``LogManager.request_flush``) is what commit and
    abort issue.  With the default policy every request flushes
    immediately -- byte-identical to the pre-group-commit behaviour.  A
    policy with larger thresholds lets requests coalesce: the durability
    horizon only advances once either threshold trips (or on an explicit
    ``flush``/drain), so N commits share one flush -- classic group
    commit.  Physically flushes are no-ops in this main-memory system, so
    deferral is recovery-neutral: the surviving log is identical.

    Attributes:
        max_pending_requests: Count threshold -- a real flush is forced
            once this many requests have coalesced.
        max_pending_records: Size threshold -- a real flush is forced
            once the unflushed log tail reaches this many records.
    """

    max_pending_requests: int = 1
    max_pending_records: int = 1

    def __post_init__(self) -> None:
        if self.max_pending_requests < 1:
            raise ValueError(
                f"max_pending_requests must be >= 1: "
                f"{self.max_pending_requests}")
        if self.max_pending_records < 1:
            raise ValueError(
                f"max_pending_records must be >= 1: "
                f"{self.max_pending_records}")

    @property
    def immediate(self) -> bool:
        """True when every request flushes at once (no coalescing)."""
        return self.max_pending_requests <= 1 and \
            self.max_pending_records <= 1


#: The default, non-coalescing policy: every flush request flushes.
IMMEDIATE_FLUSH = FlushPolicy()

#: A reasonable group-commit policy for batched runs (see
#: ``benchmarks/bench_batching.py``).
GROUP_FLUSH = FlushPolicy(max_pending_requests=8, max_pending_records=64)


class LogManager:
    """Monotonic, append-only sequence of :class:`LogRecord` objects.

    LSNs are dense integers starting at :data:`FIRST_LSN`; the record with
    LSN ``n`` lives at list index ``n - FIRST_LSN``, making ``record_at``
    O(1) and range scans allocation-free.

    All reading APIs share one LSN contract: negative LSNs are rejected
    with :class:`ValueError` (they can only come from arithmetic bugs);
    ``NULL_LSN`` (0) and LSNs past the end are in-range for *bounds* (they
    clamp / yield nothing) but not for point lookups (``record_at``
    raises :class:`IndexError`).
    """

    def __init__(self, metrics: Optional[Metrics] = None,
                 faults: Optional[FaultInjector] = None,
                 flush_policy: Optional[FlushPolicy] = None,
                 disk: Optional["SimulatedDisk"] = None) -> None:
        self._records: List[LogRecord] = []
        self._flushed_lsn = NULL_LSN
        #: Group-commit policy applied by :meth:`request_flush`.
        self.flush_policy = flush_policy if flush_policy is not None \
            else IMMEDIATE_FLUSH
        self._pending_requests = 0
        self._pending_target = NULL_LSN
        self._coalesce_depth = 0
        #: Observability registry (``wal.appends``, ``wal.flushes``,
        #: ``wal.tail_depth``); the shared no-op singleton by default.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Simulated stable storage; ``None`` keeps flush a physical no-op.
        self._disk: Optional["SimulatedDisk"] = None
        #: Highest LSN whose frame has been staged on the disk (so a
        #: retried flush after a failed sync does not double-append).
        self._disk_staged_lsn = NULL_LSN
        #: :class:`~repro.wal.frames.SalvageReport` when this manager was
        #: rebuilt by :meth:`from_disk`; ``None`` for a fresh log.
        self.salvage: Optional["SalvageReport"] = None
        #: Fault injector; the shared no-op singleton by default.  The
        #: setter propagates the injector to the attached disk, so
        #: ``log.faults = injector`` arms the disk sites too.
        self.faults = faults if faults is not None else NULL_FAULTS
        #: Observers called synchronously with each appended record.  Used
        #: by tests and by the simulator's accounting; the transformation
        #: framework deliberately does NOT use observers -- it polls the log
        #: like the paper's propagator.
        self.observers: List[Callable[[LogRecord], None]] = []
        if disk is not None:
            self.attach_disk(disk)

    # -- durable storage ----------------------------------------------------

    @property
    def faults(self) -> FaultInjector:
        """Fault injector shared with the attached disk (if any)."""
        return self._faults

    @faults.setter
    def faults(self, injector: FaultInjector) -> None:
        self._faults = injector
        if self._disk is not None:
            self._disk.faults = injector

    @property
    def disk(self) -> Optional["SimulatedDisk"]:
        """The attached simulated disk, or ``None`` (volatile log)."""
        return self._disk

    def attach_disk(self, disk: "SimulatedDisk") -> None:
        """Write flushed frames to ``disk`` from now on.

        An empty disk gets the segment header immediately (staged and
        synced -- creating the log file is not a user-visible durability
        event, so no injection site is crossed for it).  Attaching a
        disk mid-life is allowed: the next flush writes every record
        from the log head up to the flush target.

        Log and disk always share one injector afterwards.  A disk that
        arrives with its own enabled injector keeps it (the log adopts
        it) rather than having it silently replaced by the log's no-op
        default; otherwise the log's injector propagates down.
        """
        self._disk = disk
        if disk.faults.enabled and not self._faults.enabled:
            self._faults = disk.faults
        disk.faults = self._faults
        if disk.size == 0:
            disk.append(SEGMENT_HEADER)
            disk.sync()

    @classmethod
    def from_disk(cls, disk: "SimulatedDisk",
                  metrics: Optional[Metrics] = None,
                  flush_policy: Optional[FlushPolicy] = None
                  ) -> "LogManager":
        """Rebuild a log from the disk's crash image (salvage recovery).

        The image is salvaged with
        :func:`repro.wal.frames.decode_segment`: a torn tail is
        truncated; mid-log corruption raises
        :class:`~repro.common.errors.LogCorruptionError` (the log is
        quarantined, nothing is applied).  The returned manager holds
        exactly the salvaged **flushed prefix** -- the records the
        pre-crash system never flushed are gone, as they would be on
        real hardware -- with ``flushed_lsn == end_lsn``, and the disk
        is rebased on the salvaged image so post-recovery appends
        continue the same segment.
        """
        from repro.wal.frames import decode_segment
        image = disk.crash_image()
        salvage = decode_segment(image)
        log = cls(metrics=metrics, flush_policy=flush_policy)
        log._records = list(salvage.records)
        log._flushed_lsn = log.end_lsn
        log.salvage = salvage
        disk.reopen(image[:salvage.byte_length])
        log._disk = disk
        log._disk_staged_lsn = log.end_lsn
        if disk.size == 0:
            disk.append(SEGMENT_HEADER)
            disk.sync()
        return log

    def _write_frames(self, up_to_lsn: int) -> None:
        """Stage + sync frames for records up to ``up_to_lsn``."""
        if self._disk is None or up_to_lsn <= self._disk_staged_lsn:
            return
        start = max(self._disk_staged_lsn, NULL_LSN) - FIRST_LSN + 1
        stop = up_to_lsn - FIRST_LSN + 1
        buf = bytearray()
        for record in self._records[start:stop]:
            buf.extend(encode_frame(record))
        self._disk.append(bytes(buf))
        self._disk_staged_lsn = up_to_lsn
        self._disk.sync()
        if self.metrics.enabled:
            self.metrics.inc("wal.disk.bytes", len(buf))

    # -- append ------------------------------------------------------------

    def append(self, record: LogRecord, prev_lsn: int = NULL_LSN) -> int:
        """Append ``record``, assigning its LSN; return the new LSN.

        Args:
            record: The record to append.  Its ``lsn`` must be unassigned.
            prev_lsn: Back-chain pointer to the owning transaction's
                previous record (``NULL_LSN`` if none).
        """
        if record.lsn != NULL_LSN:
            raise ValueError(f"record already appended: lsn={record.lsn}")
        self.faults.fire(SITE_WAL_APPEND, kind=record.kind)
        record.lsn = FIRST_LSN + len(self._records)
        record.prev_lsn = prev_lsn
        self._records.append(record)
        self.faults.fire(SITE_WAL_APPEND_DONE, kind=record.kind,
                         lsn=record.lsn)
        self.metrics.inc("wal.appends")
        for observer in self.observers:
            observer(record)
        return record.lsn

    def append_batch(self, records: Sequence[LogRecord],
                     prev_lsns: Optional[Sequence[int]] = None) -> List[int]:
        """Append ``records`` contiguously; return their new LSNs.

        The batch is assigned a dense LSN range in order, exactly as if
        each record had been :meth:`append`-ed individually -- same LSNs,
        same back-chains, same observer calls -- but the fault sites and
        the per-record bookkeeping are amortized over the batch.  An
        empty batch is a no-op.

        Args:
            records: Records to append; each ``lsn`` must be unassigned.
            prev_lsns: Optional parallel sequence of back-chain pointers
                (``NULL_LSN`` entries for records with no predecessor).
                Defaults to ``NULL_LSN`` for every record.
        """
        if not records:
            return []
        if prev_lsns is not None and len(prev_lsns) != len(records):
            raise ValueError(
                f"prev_lsns length {len(prev_lsns)} != "
                f"records length {len(records)}")
        for record in records:
            if record.lsn != NULL_LSN:
                raise ValueError(
                    f"record already appended: lsn={record.lsn}")
        self.faults.fire(SITE_WAL_APPEND_BATCH, n=len(records),
                         kind=records[0].kind)
        lsns: List[int] = []
        base = FIRST_LSN + len(self._records)
        for i, record in enumerate(records):
            record.lsn = base + i
            record.prev_lsn = prev_lsns[i] if prev_lsns is not None \
                else NULL_LSN
            self._records.append(record)
            lsns.append(record.lsn)
        self.faults.fire(SITE_WAL_APPEND_BATCH_DONE, n=len(records),
                         last_lsn=lsns[-1])
        if self.metrics.enabled:
            self.metrics.inc("wal.appends", len(records))
            self.metrics.inc("wal.append_batches")
            self.metrics.observe("wal.batch_size", len(records))
        for record in records:
            for observer in self.observers:
                observer(record)
        return lsns

    def flush(self, up_to_lsn: Optional[int] = None) -> None:
        """Force the log up to ``up_to_lsn`` (default: everything).

        ``flushed_lsn`` is monotonic: a flush bounded below the current
        flushed position (a latecomer whose records a group flush already
        covered) is a no-op rather than moving the durability horizon
        backwards.  With a disk attached, the unflushed records are
        framed, staged and synced *before* the horizon advances, so a
        crash inside the write path leaves ``flushed_lsn`` honest.
        """
        if up_to_lsn is not None and up_to_lsn < 0:
            raise ValueError(f"negative lsn: {up_to_lsn}")
        self.faults.fire(SITE_WAL_FLUSH, up_to_lsn=up_to_lsn)
        target = self.end_lsn if up_to_lsn is None \
            else min(up_to_lsn, self.end_lsn)
        if self.metrics.enabled:
            self.metrics.inc("wal.flushes")
            self.metrics.observe("wal.tail_depth",
                                 max(0, self.end_lsn - self._flushed_lsn))
        self._write_frames(target)
        self._flushed_lsn = max(self._flushed_lsn, target)
        if self._flushed_lsn >= self._pending_target:
            self._pending_requests = 0
            self._pending_target = NULL_LSN

    def request_flush(self, up_to_lsn: Optional[int] = None) -> bool:
        """Policy-aware flush: coalesce with neighbours when allowed.

        This is the group-commit entry point commit/abort use.  With the
        default :data:`IMMEDIATE_FLUSH` policy (and outside any
        :meth:`coalescing` window) it degenerates to :meth:`flush` --
        identical behaviour, identical counters.  Under a coalescing
        policy the request only records the desired horizon; a real flush
        happens once either threshold trips.  Returns ``True`` iff a real
        flush happened.
        """
        if up_to_lsn is not None and up_to_lsn < 0:
            raise ValueError(f"negative lsn: {up_to_lsn}")
        target = self.end_lsn if up_to_lsn is None \
            else min(up_to_lsn, self.end_lsn)
        self._pending_requests += 1
        self._pending_target = max(self._pending_target, target)
        if self._coalesce_depth > 0:
            return False
        policy = self.flush_policy
        if policy.immediate \
                or self._pending_requests >= policy.max_pending_requests \
                or (self.end_lsn - self._flushed_lsn
                    >= policy.max_pending_records):
            self._group_flush()
            return True
        self.metrics.inc("wal.flushes.deferred")
        return False

    def drain_flushes(self) -> None:
        """Force any deferred flush requests to complete now."""
        if self._pending_target > self._flushed_lsn:
            self._group_flush()
        else:
            self._pending_requests = 0
            self._pending_target = NULL_LSN

    def _group_flush(self) -> None:
        coalesced = self._pending_requests
        self.faults.fire(SITE_WAL_GROUP_FLUSH, coalesced=coalesced)
        if self.metrics.enabled and coalesced > 1:
            self.metrics.observe("wal.group_flush.coalesced", coalesced)
        self.flush(self._pending_target if self._pending_target else None)

    @contextmanager
    def coalescing(self) -> Iterator[None]:
        """Defer all flush requests until the window closes.

        Used around latched windows (synchronization dooming a batch of
        old transactions aborts each one, and each abort requests a
        flush): inside the window requests only accumulate; one group
        flush covering the highest requested horizon runs on exit.
        Reentrant -- only the outermost window drains.
        """
        self._coalesce_depth += 1
        try:
            yield
        finally:
            self._coalesce_depth -= 1
            if self._coalesce_depth == 0:
                self.drain_flushes()

    # -- positions ----------------------------------------------------------

    @property
    def end_lsn(self) -> int:
        """LSN of the most recently appended record (``NULL_LSN`` if empty)."""
        return NULL_LSN if not self._records else self._records[-1].lsn

    @property
    def next_lsn(self) -> int:
        """LSN that the next appended record will receive."""
        return FIRST_LSN + len(self._records)

    @property
    def flushed_lsn(self) -> int:
        """Highest LSN known to be on stable storage."""
        return self._flushed_lsn

    def __len__(self) -> int:
        return len(self._records)

    # -- reading ------------------------------------------------------------

    def record_at(self, lsn: int) -> LogRecord:
        """Return the record with the given LSN.

        Raises :class:`ValueError` for negative LSNs (arithmetic bugs)
        and :class:`IndexError` for in-domain LSNs with no record
        (``NULL_LSN``, or past the end of the log).
        """
        if lsn < 0:
            raise ValueError(f"negative lsn: {lsn}")
        index = lsn - FIRST_LSN
        if index < 0 or index >= len(self._records):
            raise IndexError(f"no log record with lsn {lsn}")
        return self._records[index]

    def scan(self, from_lsn: int = FIRST_LSN,
             to_lsn: Optional[int] = None) -> Iterator[LogRecord]:
        """Yield records with ``from_lsn <= lsn <= to_lsn`` in LSN order.

        ``to_lsn`` defaults to the current end of the log, *fixed at call
        time*: records appended while the caller iterates are not included,
        which is exactly the bounded-cycle behaviour a log-propagation
        iteration needs.  The snapshot really is taken when :meth:`scan`
        is *called*, not when iteration starts -- a generator body would
        only read ``end_lsn`` at the first ``next()``, silently widening
        the window for callers that append between creating the iterator
        and draining it (concurrent per-shard propagators do exactly
        that).

        Boundary contract: scanning an empty log yields nothing;
        ``from_lsn`` below :data:`FIRST_LSN` starts at the log head;
        ``from_lsn > end_lsn`` yields nothing; ``to_lsn`` beyond the end
        clamps to the end.  Negative bounds raise :class:`ValueError`.
        """
        if from_lsn < 0:
            raise ValueError(f"negative lsn: {from_lsn}")
        if to_lsn is not None and to_lsn < 0:
            raise ValueError(f"negative lsn: {to_lsn}")
        end = self.end_lsn if to_lsn is None else to_lsn
        start_index = max(0, from_lsn - FIRST_LSN)
        end_index = min(len(self._records), end - FIRST_LSN + 1)

        def _iterate() -> Iterator[LogRecord]:
            for index in range(start_index, end_index):
                yield self._records[index]

        return _iterate()

    def records_slice(self, from_lsn: int,
                      to_lsn: int) -> List[LogRecord]:
        """Records in the closed LSN interval, as a list.

        The batch-propagation fetch path: one C-level list slice instead
        of per-record :meth:`record_at` calls.  Bounds follow the
        :meth:`scan` contract (clamping, :class:`ValueError` on negative
        LSNs); the returned list is a copy, safe against later appends.
        """
        if from_lsn < 0 or to_lsn < 0:
            raise ValueError(f"negative lsn: {min(from_lsn, to_lsn)}")
        start = max(0, from_lsn - FIRST_LSN)
        stop = min(len(self._records), to_lsn - FIRST_LSN + 1)
        return self._records[start:stop]

    def records_between(self, from_lsn: int, to_lsn: int) -> int:
        """Number of records in the closed LSN interval (for analysis).

        Bounds follow the class-level LSN contract: negative LSNs raise
        :class:`ValueError`; in-domain bounds clamp (an empty or inverted
        interval counts zero).
        """
        if from_lsn < 0 or to_lsn < 0:
            raise ValueError(f"negative lsn: {min(from_lsn, to_lsn)}")
        if to_lsn < from_lsn:
            return 0
        lo = max(FIRST_LSN, from_lsn)
        hi = min(self.end_lsn, to_lsn)
        return max(0, hi - lo + 1)

    def tail_length(self, after_lsn: int) -> int:
        """Number of records appended after ``after_lsn`` (analysis helper).

        Negative LSNs raise :class:`ValueError` per the class-level LSN
        contract; ``NULL_LSN`` counts the whole log.
        """
        if after_lsn < 0:
            raise ValueError(f"negative lsn: {after_lsn}")
        return max(0, self.end_lsn - after_lsn)

    def dump(self) -> str:
        """Multi-line human-readable rendering of the whole log."""
        return "\n".join(record.describe() for record in self._records)
