"""A simulated disk the WAL actually writes frames to.

:class:`SimulatedDisk` models the only part of a storage stack the
paper's recovery story depends on: an append-only byte device with an
explicit durability barrier (``sync``) that can *misbehave* in the three
classic ways -- a torn write cutting the final flush mid-frame, a lying
fsync that loses the tail, and silent bit rot inside a synced frame.

The model is deliberately simple and deterministic:

* :meth:`append` stages bytes in the simulated page cache (the tail of
  the buffer past ``durable_size``);
* :meth:`sync` advances the durable horizon over everything staged --
  unless a :class:`~repro.faults.LostFlushFault` is armed on the
  ``disk.sync`` site, in which case the horizon stays frozen while the
  arming keeps firing (a later honest sync persists the cached bytes,
  exactly like a page cache that survived the lying fsync);
* :meth:`crash_image` is what a simulated kill leaves behind: the
  durable prefix, with any pending :class:`~repro.faults.TornWriteFault`
  tear (truncating the last synced write mid-frame) and
  :class:`~repro.faults.BitFlipFault` corruption (one inverted bit in a
  chosen frame's payload) applied.

Both ``disk.write`` and ``disk.sync`` are registered injection sites, so
the crash sweep also kills the system *inside* the flush path: bytes
staged but not synced must never count as durable.

Recovery goes through :meth:`repro.wal.log.LogManager.from_disk`, which
salvages the image with :func:`repro.wal.frames.decode_segment` and
:meth:`reopen`-s the disk on the salvaged prefix so post-recovery
appends continue in the same segment.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.faults import (
    NULL_FAULTS,
    BitFlipFault,
    DiskFault,
    FaultInjector,
    LostFlushFault,
    TornWriteFault,
    register_site,
)
from repro.wal.frames import (
    FRAME_HEADER_SIZE,
    SEGMENT_HEADER,
    SEGMENT_HEADER_SIZE,
)

SITE_DISK_WRITE = register_site(
    "disk.write", "disk",
    "before frame bytes are staged in the disk's page cache")
SITE_DISK_SYNC = register_site(
    "disk.sync", "disk",
    "before staged bytes become durable (the fsync barrier)")


class SimulatedDisk:
    """Append-only byte device with an explicit durability barrier."""

    def __init__(self, faults: Optional[FaultInjector] = None) -> None:
        #: Everything ever written, durable or not (the OS page cache
        #: plus the platters).
        self._buffer = bytearray()
        #: Bytes guaranteed to survive a crash (advanced by honest syncs).
        self._durable_len = 0
        #: Byte length of the most recent write batch that reached
        #: durability -- the region a torn write may cut into.
        self._last_sync_len = 0
        #: Fault injector; the shared no-op singleton by default.
        self.faults = faults if faults is not None else NULL_FAULTS
        self._pending_tear: Optional[TornWriteFault] = None
        self._pending_flips: List[BitFlipFault] = []
        #: Total sync calls that were honoured / that lied (for reports).
        self.syncs = 0
        self.lost_syncs = 0

    # -- geometry ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Bytes written (durable or staged)."""
        return len(self._buffer)

    @property
    def durable_size(self) -> int:
        """Bytes guaranteed to survive a crash."""
        return self._durable_len

    # -- the write path ----------------------------------------------------

    def append(self, data: bytes) -> None:
        """Stage ``data`` in the page cache (not yet durable)."""
        if not data:
            return
        self.faults.fire(SITE_DISK_WRITE, n=len(data), offset=self.size)
        self._buffer.extend(data)

    def sync(self) -> bool:
        """Durability barrier; returns ``True`` if the horizon advanced.

        A fired :class:`LostFlushFault` makes this a lying fsync: the
        call "succeeds" (no exception -- that is the point of the fault)
        but the durable horizon does not move.  Torn-write and bit-flip
        faults fired here are remembered and applied to the crash image.
        """
        fault = self.faults.fire(SITE_DISK_SYNC, staged=self.pending_bytes)
        if isinstance(fault, DiskFault):
            if isinstance(fault, LostFlushFault):
                self.lost_syncs += 1
                return False
            if isinstance(fault, TornWriteFault):
                self._pending_tear = fault
            elif isinstance(fault, BitFlipFault):
                self._pending_flips.append(fault)
        advanced = len(self._buffer) > self._durable_len
        if advanced:
            self._last_sync_len = len(self._buffer) - self._durable_len
            self._durable_len = len(self._buffer)
        self.syncs += 1
        return advanced

    @property
    def pending_bytes(self) -> int:
        """Staged bytes not yet covered by an honest sync."""
        return len(self._buffer) - self._durable_len

    # -- what a crash leaves behind ----------------------------------------

    def crash_image(self) -> bytes:
        """The byte image surviving a simulated kill, faults applied."""
        image = bytearray(self._buffer[:self._durable_len])
        if self._pending_tear is not None and image:
            cut = self._pending_tear.cut
            if cut is None:
                cut = max(1, self._last_sync_len // 2)
            # The tear stays inside the last synced write and never eats
            # the segment header.
            cut = min(cut, max(self._last_sync_len, 1),
                      max(len(image) - SEGMENT_HEADER_SIZE, 0))
            if cut:
                del image[len(image) - cut:]
        for flip in self._pending_flips:
            _apply_bit_flip(image, flip)
        return bytes(image)

    # -- lifecycle ----------------------------------------------------------

    def reopen(self, image: bytes) -> None:
        """Rebase on a salvaged image (recovery continues the segment)."""
        self._buffer = bytearray(image)
        self._durable_len = len(image)
        self._last_sync_len = 0
        self._pending_tear = None
        self._pending_flips = []
        self.faults = NULL_FAULTS


def _frame_regions(image: bytearray) -> List[Tuple[int, int]]:
    """``(payload_offset, payload_length)`` per structurally complete
    frame -- no CRC check (we are about to *break* a CRC on purpose)."""
    regions: List[Tuple[int, int]] = []
    if len(image) < SEGMENT_HEADER_SIZE or \
            bytes(image[:len(SEGMENT_HEADER)]) != SEGMENT_HEADER:
        return regions
    pos = SEGMENT_HEADER_SIZE
    while pos + FRAME_HEADER_SIZE <= len(image):
        (length,) = struct.unpack_from(">I", image, pos)
        start = pos + FRAME_HEADER_SIZE
        if start + length > len(image) or length == 0:
            break
        regions.append((start, length))
        pos = start + length
    return regions


def _apply_bit_flip(image: bytearray, flip: BitFlipFault) -> None:
    """Invert one payload bit of a chosen frame in ``image``."""
    regions = _frame_regions(image)
    if not regions:
        return
    index = flip.frame_index
    if index is None:
        # Prefer a non-final frame so the corruption is unambiguously
        # mid-log (quarantine, not tail truncation).
        index = len(regions) // 2 if len(regions) > 1 else 0
        if len(regions) > 1 and index == len(regions) - 1:
            index -= 1
    index = min(index, len(regions) - 1)
    start, length = regions[index]
    byte_index = (flip.bit // 8) % length
    image[start + byte_index] ^= 1 << (flip.bit % 8)
