"""Byte-frame serialization for log records (the durable WAL format).

Every :class:`~repro.wal.records.LogRecord` can be encoded into a
self-describing binary *frame* and decoded back, byte-identically.  A log
segment on (simulated) disk is::

    [segment header][frame][frame][frame]...

* **segment header** (8 bytes): magic ``b"RWAL"``, big-endian u16 format
  version, two reserved zero bytes.  A segment whose header does not match
  is quarantined -- it is not a torn tail, it is the wrong file or a
  corrupted head.
* **frame**: big-endian u32 payload length, big-endian u32 CRC-32 of the
  payload, then the payload bytes.  The CRC covers the payload only; the
  length field is implicitly validated by the CRC (a corrupt length either
  runs past the end of the segment -- indistinguishable from a torn tail --
  or mis-frames the payload so the CRC fails).
* **payload**: one byte record-kind code, the record's ``lsn``,
  ``prev_lsn`` and ``txn_id`` as zig-zag varints, then the record's
  payload fields in dataclass declaration order, each encoded with the
  tagged value codec below.

The value codec covers everything the record classes of
:mod:`repro.wal.records` actually store: ``None``, bools, arbitrary-size
ints, floats, strings, bytes, tuples, lists, dicts (insertion order is
preserved, so a decode/encode round trip is byte-identical), nested log
records (CLR actions), :class:`~repro.storage.schema.TableSchema` objects
(DDL records, swap records) and the frozen spec dataclasses the swap
records embed (:class:`~repro.relational.spec.FojSpec`, ...).  Values
outside this set -- e.g. the row predicate *callable* of a
:class:`~repro.transform.partition.PartitionSpec` -- raise
:class:`FrameCodecError` at encode time: a payload that cannot survive a
round trip must fail loudly at flush, not at recovery.

Salvage (:func:`decode_segment`) implements the torn-write rules the
recovery path relies on:

* a frame that runs past the end of the segment, or trailing bytes too
  short to hold a frame header, are a **torn tail**: the write was cut by
  the crash; the tail is truncated and reported;
* a complete frame whose CRC fails *at the very end* of the segment is a
  **corrupt tail**: physically indistinguishable from a torn write that
  happened to cover the full claimed length, so it is also truncated --
  but reported separately (``tail_corrupt``), never silently applied;
* a frame whose CRC fails while later bytes exist is **mid-log
  corruption**: stable storage lied about previously-synced data, and the
  segment is quarantined with :class:`LogCorruptionError`.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from typing import Dict, Iterator, List, Tuple, Type

from repro.common.errors import LogCorruptionError, ReproError
from repro.storage.schema import Attribute, FunctionalDependency, TableSchema
from repro.wal.records import (
    NULL_LSN,
    AbortRecord,
    BeginRecord,
    CatalogFlipRecord,
    CCBeginRecord,
    CCOkRecord,
    CheckpointRecord,
    CLRecord,
    CommitRecord,
    CreateTableRecord,
    DeleteRecord,
    DropTableRecord,
    EndRecord,
    FuzzyMarkRecord,
    InsertRecord,
    LogRecord,
    RenameTableRecord,
    TransformRetireRecord,
    TransformSwapRecord,
    UpdateRecord,
)

#: Segment magic; the version is bumped on any incompatible layout change.
SEGMENT_MAGIC = b"RWAL"
SEGMENT_VERSION = 1
SEGMENT_HEADER = SEGMENT_MAGIC + struct.pack(">H", SEGMENT_VERSION) + b"\x00\x00"
SEGMENT_HEADER_SIZE = len(SEGMENT_HEADER)

#: Bytes of frame metadata preceding each payload: u32 length + u32 CRC.
FRAME_HEADER_SIZE = 8


class FrameCodecError(ReproError):
    """A record (or one of its payload values) cannot be framed."""


# ---------------------------------------------------------------------------
# Record-kind registry
# ---------------------------------------------------------------------------

#: Stable one-byte code per record class.  Codes are part of the on-disk
#: format: never renumber, only append.
RECORD_CODES: Dict[Type[LogRecord], int] = {
    BeginRecord: 1,
    CommitRecord: 2,
    AbortRecord: 3,
    EndRecord: 4,
    InsertRecord: 5,
    DeleteRecord: 6,
    UpdateRecord: 7,
    CLRecord: 8,
    FuzzyMarkRecord: 9,
    CCBeginRecord: 10,
    CCOkRecord: 11,
    CreateTableRecord: 12,
    DropTableRecord: 13,
    RenameTableRecord: 14,
    TransformSwapRecord: 15,
    TransformRetireRecord: 16,
    CheckpointRecord: 17,
    CatalogFlipRecord: 18,
}

_RECORD_BY_CODE: Dict[int, Type[LogRecord]] = {
    code: cls for cls, code in RECORD_CODES.items()}

#: Payload fields (everything except the LogRecord base fields), cached
#: per class in dataclass declaration order.
_BASE_FIELDS = ("lsn", "prev_lsn", "txn_id")
_PAYLOAD_FIELDS: Dict[Type[LogRecord], Tuple[str, ...]] = {}


def _payload_fields(cls: Type[LogRecord]) -> Tuple[str, ...]:
    cached = _PAYLOAD_FIELDS.get(cls)
    if cached is None:
        cached = tuple(f.name for f in dataclasses.fields(cls)
                       if f.name not in _BASE_FIELDS)
        _PAYLOAD_FIELDS[cls] = cached
    return cached


#: Frozen dataclasses that may appear as payload values (swap-record
#: params, schema attributes).  Name -> class; encoded by field order.
_DATACLASS_REGISTRY: Dict[str, type] = {
    "Attribute": Attribute,
    "FunctionalDependency": FunctionalDependency,
}


def register_payload_dataclass(cls: type) -> type:
    """Allow instances of a frozen dataclass inside record payloads.

    The class is keyed by its ``__name__`` (part of the on-disk format);
    its fields must themselves be encodable values.  Returns ``cls`` so
    it can be used as a decorator.
    """
    existing = _DATACLASS_REGISTRY.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise FrameCodecError(
            f"payload dataclass name {cls.__name__!r} already registered "
            f"for {existing!r}")
    _DATACLASS_REGISTRY[cls.__name__] = cls
    return cls


def _register_spec_dataclasses() -> None:
    # Imported lazily so repro.wal does not drag the relational layer in
    # at import time (and to keep the dependency direction one-way for
    # everything but this registration).
    from repro.relational.spec import (ExplodeSpec, FojSpec, RetypeSpec,
                                       SplitSpec)
    from repro.transform.partition import (AttrPredicate, MergeSpec,
                                           PartitionSpec)
    register_payload_dataclass(FojSpec)
    register_payload_dataclass(SplitSpec)
    register_payload_dataclass(MergeSpec)
    register_payload_dataclass(ExplodeSpec)
    register_payload_dataclass(RetypeSpec)
    register_payload_dataclass(AttrPredicate)
    # Frame-codable only when its predicate is an AttrPredicate; a spec
    # holding a bare callable still raises FrameCodecError at encode time.
    register_payload_dataclass(PartitionSpec)


# ---------------------------------------------------------------------------
# Primitive codec: zig-zag varints and tagged values
# ---------------------------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    """Unsigned LEB128."""
    if value < 0:
        raise FrameCodecError(f"varint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise FrameCodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _write_svarint(out: bytearray, value: int) -> None:
    """Zig-zag signed varint (small magnitudes stay small)."""
    _write_varint(out, value * 2 if value >= 0 else -value * 2 - 1)


def _read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    raw, pos = _read_varint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


# Value tags (one byte each).
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_RECORD = 0x0A
_T_SCHEMA = 0x0B
_T_DATACLASS = 0x0C


def encode_value(out: bytearray, value: object) -> None:
    """Append the tagged encoding of ``value`` to ``out``."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_svarint(out, value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _write_varint(out, len(value))
        out.extend(value)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            encode_value(out, item)
    elif isinstance(value, list):
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            encode_value(out, key)
            encode_value(out, item)
    elif isinstance(value, LogRecord):
        out.append(_T_RECORD)
        body = encode_record(value)
        _write_varint(out, len(body))
        out.extend(body)
    elif isinstance(value, TableSchema):
        out.append(_T_SCHEMA)
        encode_value(out, value.name)
        encode_value(out, value.attributes)
        encode_value(out, value.primary_key)
        encode_value(out, value.candidate_keys)
        encode_value(out, value.functional_deps)
    elif dataclasses.is_dataclass(value) and \
            _DATACLASS_REGISTRY.get(type(value).__name__) is type(value):
        out.append(_T_DATACLASS)
        encode_value(out, type(value).__name__)
        fields = dataclasses.fields(value)
        _write_varint(out, len(fields))
        for field in fields:
            encode_value(out, getattr(value, field.name))
    else:
        raise FrameCodecError(
            f"value of type {type(value).__name__} cannot be framed: "
            f"{value!r} (register_payload_dataclass for frozen dataclasses;"
            f" callables and arbitrary objects are not durable)")


def decode_value(data: bytes, pos: int) -> Tuple[object, int]:
    """Decode one tagged value; returns ``(value, next_pos)``."""
    if pos >= len(data):
        raise FrameCodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_svarint(data, pos)
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise FrameCodecError("truncated float")
        return struct.unpack(">d", data[pos:pos + 8])[0], pos + 8
    if tag == _T_STR:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise FrameCodecError("truncated string")
        return data[pos:pos + length].decode("utf-8"), pos + length
    if tag == _T_BYTES:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise FrameCodecError("truncated bytes")
        return bytes(data[pos:pos + length]), pos + length
    if tag in (_T_TUPLE, _T_LIST):
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = decode_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _read_varint(data, pos)
        result = {}
        for _ in range(count):
            key, pos = decode_value(data, pos)
            item, pos = decode_value(data, pos)
            result[key] = item
        return result, pos
    if tag == _T_RECORD:
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise FrameCodecError("truncated nested record")
        return decode_record(data[pos:pos + length]), pos + length
    if tag == _T_SCHEMA:
        name, pos = decode_value(data, pos)
        attributes, pos = decode_value(data, pos)
        primary_key, pos = decode_value(data, pos)
        candidate_keys, pos = decode_value(data, pos)
        functional_deps, pos = decode_value(data, pos)
        return TableSchema(name, list(attributes), list(primary_key),
                           [list(ck) for ck in candidate_keys],
                           list(functional_deps)), pos
    if tag == _T_DATACLASS:
        class_name, pos = decode_value(data, pos)
        cls = _DATACLASS_REGISTRY.get(class_name)
        if cls is None:
            _register_spec_dataclasses()
            cls = _DATACLASS_REGISTRY.get(class_name)
        if cls is None:
            raise FrameCodecError(
                f"unknown payload dataclass {class_name!r}")
        count, pos = _read_varint(data, pos)
        fields = dataclasses.fields(cls)
        if count != len(fields):
            raise FrameCodecError(
                f"{class_name} field count changed: frame has {count}, "
                f"class has {len(fields)}")
        values = []
        for _ in range(count):
            value, pos = decode_value(data, pos)
            values.append(value)
        return cls(*values), pos
    raise FrameCodecError(f"unknown value tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Record payloads and frames
# ---------------------------------------------------------------------------


def encode_record(record: LogRecord) -> bytes:
    """Serialize one record (without frame length/CRC)."""
    code = RECORD_CODES.get(type(record))
    if code is None:
        raise FrameCodecError(
            f"record class {type(record).__name__} has no frame code; "
            f"add it to repro.wal.frames.RECORD_CODES")
    if _DATACLASS_REGISTRY.get("FojSpec") is None:
        _register_spec_dataclasses()
    out = bytearray()
    out.append(code)
    _write_svarint(out, record.lsn)
    _write_svarint(out, record.prev_lsn)
    _write_svarint(out, record.txn_id)
    for name in _payload_fields(type(record)):
        encode_value(out, getattr(record, name))
    return bytes(out)


def decode_record(data: bytes) -> LogRecord:
    """Rebuild a record from :func:`encode_record` output."""
    if not data:
        raise FrameCodecError("empty record payload")
    cls = _RECORD_BY_CODE.get(data[0])
    if cls is None:
        raise FrameCodecError(f"unknown record code 0x{data[0]:02x}")
    pos = 1
    lsn, pos = _read_svarint(data, pos)
    prev_lsn, pos = _read_svarint(data, pos)
    txn_id, pos = _read_svarint(data, pos)
    kwargs: Dict[str, object] = {"txn_id": txn_id}
    for name in _payload_fields(cls):
        value, pos = decode_value(data, pos)
        kwargs[name] = value
    if pos != len(data):
        raise FrameCodecError(
            f"{len(data) - pos} trailing bytes after "
            f"{cls.__name__} payload")
    record = cls(**kwargs)
    record.lsn = lsn
    record.prev_lsn = prev_lsn
    return record


def encode_frame(record: LogRecord) -> bytes:
    """One length-prefixed, CRC-protected frame for ``record``."""
    payload = encode_record(record)
    return struct.pack(">II", len(payload), zlib.crc32(payload)) + payload


def frame_spans(image: bytes) -> Iterator[Tuple[int, int]]:
    """Yield ``(payload_offset, payload_length)`` for each *complete*,
    CRC-valid frame of a segment image (stops at the first bad frame).

    A parsing helper for fault targeting and tests; the authoritative
    salvage path is :func:`decode_segment`.
    """
    pos = SEGMENT_HEADER_SIZE
    while pos + FRAME_HEADER_SIZE <= len(image):
        length, crc = struct.unpack_from(">II", image, pos)
        start = pos + FRAME_HEADER_SIZE
        if start + length > len(image):
            return
        if zlib.crc32(image[start:start + length]) != crc:
            return
        yield start, length
        pos = start + length


class SalvageReport:
    """What :func:`decode_segment` found and what it had to discard.

    Attributes:
        records: The salvaged record prefix, in LSN order.
        byte_length: Length of the valid byte prefix of the segment
            (header + intact frames); everything past it was truncated.
        torn: ``True`` when a partially-written frame was truncated
            (the crash cut a flush mid-frame).
        tail_corrupt: ``True`` when the *final* complete frame failed its
            CRC and was truncated (detected, reported, never applied).
        dropped_bytes: Bytes discarded past the valid prefix.
    """

    def __init__(self, records: List[LogRecord], byte_length: int,
                 torn: bool, tail_corrupt: bool,
                 dropped_bytes: int) -> None:
        self.records = records
        self.byte_length = byte_length
        self.torn = torn
        self.tail_corrupt = tail_corrupt
        self.dropped_bytes = dropped_bytes

    def describe(self) -> str:
        status = []
        if self.torn:
            status.append("torn tail truncated")
        if self.tail_corrupt:
            status.append("corrupt tail frame discarded")
        if not status:
            status.append("clean")
        return (f"salvaged {len(self.records)} records "
                f"({self.byte_length} bytes, "
                f"{self.dropped_bytes} dropped): {'; '.join(status)}")


def decode_segment(image: bytes) -> SalvageReport:
    """Salvage a segment image: decode frames, truncate a torn tail.

    Raises :class:`LogCorruptionError` on a bad segment header or on a
    CRC failure that is *not* at the tail (mid-log corruption).  An empty
    image is a valid empty log (nothing was ever flushed).
    """
    if not image:
        return SalvageReport([], 0, torn=False, tail_corrupt=False,
                             dropped_bytes=0)
    if len(image) < SEGMENT_HEADER_SIZE:
        if SEGMENT_HEADER.startswith(bytes(image)):
            # A crash cut the very first write inside the header.
            return SalvageReport([], 0, torn=True, tail_corrupt=False,
                                 dropped_bytes=len(image))
        raise LogCorruptionError(
            "segment header truncated to unrecognizable bytes",
            frame_index=-1, lsn=NULL_LSN, offset=0)
    if bytes(image[:SEGMENT_HEADER_SIZE]) != SEGMENT_HEADER:
        raise LogCorruptionError(
            f"bad segment header {bytes(image[:SEGMENT_HEADER_SIZE])!r} "
            f"(expected {SEGMENT_HEADER!r})",
            frame_index=-1, lsn=NULL_LSN, offset=0)

    records: List[LogRecord] = []
    pos = SEGMENT_HEADER_SIZE
    index = 0
    size = len(image)
    while pos < size:
        if pos + FRAME_HEADER_SIZE > size:
            return SalvageReport(records, pos, torn=True,
                                 tail_corrupt=False,
                                 dropped_bytes=size - pos)
        length, crc = struct.unpack_from(">II", image, pos)
        start = pos + FRAME_HEADER_SIZE
        end = start + length
        if end > size:
            return SalvageReport(records, pos, torn=True,
                                 tail_corrupt=False,
                                 dropped_bytes=size - pos)
        payload = bytes(image[start:end])
        expected_lsn = records[-1].lsn + 1 if records else NULL_LSN + 1
        if zlib.crc32(payload) != crc:
            if end == size:
                # Final frame: indistinguishable from a torn write that
                # covered the whole claimed length with garbage.  Truncate
                # -- the corrupt bytes are reported, never applied.
                return SalvageReport(records, pos, torn=False,
                                     tail_corrupt=True,
                                     dropped_bytes=size - pos)
            raise LogCorruptionError(
                "frame checksum mismatch with later frames present",
                frame_index=index, lsn=expected_lsn, offset=pos,
                salvaged=tuple(records))
        try:
            record = decode_record(payload)
        except FrameCodecError as exc:
            # CRC passed but the payload does not parse: a codec bug or
            # deliberate tampering -- quarantine either way.
            raise LogCorruptionError(
                f"frame payload undecodable: {exc}",
                frame_index=index, lsn=expected_lsn, offset=pos,
                salvaged=tuple(records))
        if record.lsn != expected_lsn:
            raise LogCorruptionError(
                f"LSN discontinuity: frame carries lsn {record.lsn}, "
                f"expected {expected_lsn}",
                frame_index=index, lsn=expected_lsn, offset=pos,
                salvaged=tuple(records))
        records.append(record)
        index += 1
        pos = end
    return SalvageReport(records, pos, torn=False, tail_corrupt=False,
                         dropped_bytes=0)
