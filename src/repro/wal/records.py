"""Typed log records for the write-ahead log.

The paper assumes an ARIES-style log [Mohan et al. 1992]: every record
carries a log sequence number (LSN), undo operations produce Compensating
Log Records (CLRs), and each transaction's records are back-chained through
``prev_lsn`` so rollback can walk the chain.

Beyond the classic record kinds (begin / commit / abort / insert / delete /
update / CLR / checkpoint), the transformation framework of the paper adds:

* **fuzzy marks** (Section 3.2/3.3) delimiting the fuzzy read and each log
  propagation cycle; the *begin* mark embeds the identifiers of all
  transactions active on the source tables, because propagation must start
  from the oldest record of any of them;
* **consistency-checker marks** (Section 5.3): ``Begin CC on v`` and
  ``CC: v is ok`` records bracketing a lock-free re-read of the source rows
  contributing to a suspect split record.

Records are plain frozen dataclasses.  ``lsn`` and ``prev_lsn`` are filled
in by :class:`repro.wal.log.LogManager` at append time; user code constructs
records with the payload fields only.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: LSN value used before a record has been appended, and as "nil" prev_lsn.
NULL_LSN = 0


def _freeze_values(values: Optional[Mapping]) -> Optional[Dict]:
    """Defensively copy a values mapping so log records stay immutable."""
    if values is None:
        return None
    return dict(values)


@dataclass
class LogRecord:
    """Base class of every log record.

    Attributes:
        lsn: Log sequence number, assigned monotonically at append time.
        prev_lsn: LSN of the previous record of the *same transaction*
            (``NULL_LSN`` for the first record of a transaction and for
            records not owned by any transaction, such as fuzzy marks).
        txn_id: Owning transaction id, or ``0`` for non-transactional
            records.
    """

    lsn: int = field(default=NULL_LSN, init=False)
    prev_lsn: int = field(default=NULL_LSN, init=False)
    txn_id: int = 0

    @property
    def kind(self) -> str:
        """Short lowercase name of the record type, e.g. ``"insert"``."""
        return type(self).__name__.replace("Record", "").lower()

    def describe(self) -> str:
        """One-line human-readable rendering used by debug dumps."""
        fields = dataclasses.asdict(self)
        fields.pop("lsn", None)
        fields.pop("prev_lsn", None)
        body = ", ".join(f"{k}={v!r}" for k, v in fields.items())
        return f"[{self.lsn}] {self.kind}({body}) prev={self.prev_lsn}"


# ---------------------------------------------------------------------------
# Transaction life-cycle records
# ---------------------------------------------------------------------------


@dataclass
class BeginRecord(LogRecord):
    """Transaction start."""


@dataclass
class CommitRecord(LogRecord):
    """Transaction committed; all of its locks may be released."""


@dataclass
class AbortRecord(LogRecord):
    """Transaction abort has *started*; rollback (CLRs) follows."""


@dataclass
class EndRecord(LogRecord):
    """Transaction fully finished (end record after commit or rollback).

    The log propagator of the transformation framework releases the
    mirrored locks of a transaction when it meets this record (the paper's
    "transaction aborted / committed log record"), because only then is the
    transaction's complete effect -- including compensations -- reflected in
    the transformed tables.

    Attributes:
        committed: ``True`` if the transaction committed, ``False`` if it
            was rolled back.
    """

    committed: bool = True


# ---------------------------------------------------------------------------
# Data-change records
# ---------------------------------------------------------------------------


@dataclass
class InsertRecord(LogRecord):
    """A row was inserted.  Carries the complete new row image.

    Attributes:
        table: Name of the table at the time of the operation.
        key: Primary-key tuple of the inserted row.
        values: Full attribute mapping of the new row (redo information;
            also sufficient for undo, which deletes by key).
    """

    table: str = ""
    key: Tuple = ()
    values: Dict = field(default_factory=dict)


@dataclass
class DeleteRecord(LogRecord):
    """A row was deleted.

    The paper notes that "the primary key of the record to delete is all
    the information needed" for redo; the old row image is retained as undo
    information (and is what a CLR re-inserts).

    Attributes:
        table: Name of the table.
        key: Primary-key tuple of the deleted row.
        old_values: Full attribute mapping of the row before deletion
            (undo information only -- propagation rules do not rely on it
            beyond what an index lookup could also provide).
    """

    table: str = ""
    key: Tuple = ()
    old_values: Dict = field(default_factory=dict)


@dataclass
class UpdateRecord(LogRecord):
    """A row was updated in place.

    Following the paper (Section 4.2, "Update Operations"), the redo part
    contains only the primary key and the *changed* attribute values; the
    old values of exactly those attributes are kept as undo information.
    Primary-key attributes can never appear among the changed attributes --
    key changes must be expressed as delete + insert.

    Attributes:
        table: Name of the table.
        key: Primary-key tuple of the updated row.
        changes: Mapping of changed attribute name to its new value.
        old_values: Mapping of the same attribute names to their values
            before the update (undo information).
    """

    table: str = ""
    key: Tuple = ()
    changes: Dict = field(default_factory=dict)
    old_values: Dict = field(default_factory=dict)


@dataclass
class CLRecord(LogRecord):
    """Compensating Log Record, written while rolling back.

    The ``action`` field holds an ordinary data-change record (insert,
    delete or update) describing the *compensating* operation, which is
    redo-only: a CLR is never undone.  ``undo_next_lsn`` points at the next
    record of the transaction that still needs undoing, so rollback can
    resume after a crash without compensating twice (ARIES).

    The transformation framework's log propagator treats the embedded
    ``action`` exactly like a normal logged operation -- this is what makes
    aborted user transactions converge correctly in the transformed tables.
    """

    action: Optional[LogRecord] = None
    undo_next_lsn: int = NULL_LSN


# ---------------------------------------------------------------------------
# Transformation-framework records
# ---------------------------------------------------------------------------


@dataclass
class FuzzyMarkRecord(LogRecord):
    """Delimiter written by the transformation framework (Section 3.2/3.3).

    Attributes:
        transform_id: Identifier of the owning transformation.
        phase: ``"begin"`` before the fuzzy read starts (this one embeds
            the active-transaction snapshot), ``"cycle"`` at the end of
            every log-propagation iteration, ``"end"`` when the
            transformation completes.
        active_txns: Ids of transactions active on the source tables when
            the mark was written (meaningful for ``"begin"`` marks).
    """

    transform_id: str = ""
    phase: str = "begin"
    active_txns: Tuple[int, ...] = ()


@dataclass
class CCBeginRecord(LogRecord):
    """``Begin CC on v``: the consistency checker starts examining ``v``.

    Attributes:
        transform_id: Identifier of the owning split transformation.
        split_value: The split-attribute value under examination.
    """

    transform_id: str = ""
    split_value: Tuple = ()


@dataclass
class CCOkRecord(LogRecord):
    """``CC: v is ok``: the re-read found the contributors consistent.

    Carries the correct image of the S-record so the propagator can install
    it (and flip the flag to *Consistent*) if no operation touched ``v``
    between the begin and ok marks.

    Attributes:
        transform_id: Identifier of the owning split transformation.
        split_value: The split-attribute value that was checked.
        image: The verified attribute mapping of the S-record.
    """

    transform_id: str = ""
    split_value: Tuple = ()
    image: Dict = field(default_factory=dict)


@dataclass
class CreateTableRecord(LogRecord):
    """DDL: a table was created.

    Attributes:
        schema: The created table's schema object.
        transient: ``True`` for transformation target tables, whose content
            is built by non-logged physical redo; restart recovery discards
            transient tables (the paper's crash policy is to abort an
            in-flight transformation and restart it).
    """

    schema: object = None
    transient: bool = False


@dataclass
class DropTableRecord(LogRecord):
    """DDL: a table was dropped."""

    table: str = ""


@dataclass
class RenameTableRecord(LogRecord):
    """DDL: a table was renamed."""

    old_name: str = ""
    new_name: str = ""


@dataclass
class TransformSwapRecord(LogRecord):
    """A transformation's synchronization swapped the schema (Section 3.4).

    At the moment this record is written the transformed tables are
    action-consistent with the (latched) source tables, so restart recovery
    can deterministically *recompute* them by applying the transformation
    operator to the recovered source state -- see
    :mod:`repro.engine.recovery`.

    Attributes:
        transform_id: Identifier of the transformation.
        transform_kind: Operator kind registered with the recovery
            rebuild registry (``"foj"``, ``"split"``, ...).
        retired: Names of the source tables removed from the schema.
        published: Mapping of public name to the published table's schema.
        params: Operator parameters needed to recompute the targets
            (join/split attribute names, projections, ...).
        doomed_txns: Transactions force-aborted by the synchronization
            (non-blocking abort strategy).
    """

    transform_id: str = ""
    transform_kind: str = ""
    retired: Tuple[str, ...] = ()
    published: Dict = field(default_factory=dict)
    params: Dict = field(default_factory=dict)
    doomed_txns: Tuple[int, ...] = ()


@dataclass
class TransformRetireRecord(LogRecord):
    """A published transformation artefact was retired (dropped).

    Written when a published derived table -- e.g. a materialized view --
    is dropped while its earlier :class:`TransformSwapRecord` is still in
    the log.  Restart recovery collects retired transform ids up front and
    *skips* the matching swap records entirely: no rebuild, no resurrected
    rule engine fed post-drop source changes the live system legitimately
    accepted once the artefact was gone.

    Attributes:
        transform_id: Identifier of the retired transformation.
    """

    transform_id: str = ""


@dataclass
class CheckpointRecord(LogRecord):
    """Fuzzy checkpoint: snapshot of the active-transaction table.

    Used by ARIES restart analysis to bound the log scan.

    Attributes:
        active_txns: Mapping of active transaction id to its last LSN at
            checkpoint time.
    """

    active_txns: Dict[int, int] = field(default_factory=dict)


@dataclass
class CatalogFlipRecord(LogRecord):
    """The versioned catalog write of an MVCC version-flip sync.

    Written right after the :class:`TransformSwapRecord` of a
    ``version_flip`` synchronization: the schema change was installed by
    atomically bumping the catalog version instead of closing a latched
    window.  Restart recovery rebuilds the published tables from the
    swap record as usual; this marker additionally makes the flip --
    the epoch boundary -- durable and auditable in the log.  (Snapshot
    pins and frozen epochs are volatile by design: no transaction
    survives a crash, so no pre-flip reader can exist after restart.)

    Attributes:
        transform_id: Identifier of the flipping transformation.
        version: The catalog version the flip installed.
        retired: Names retired from the visible namespace.
        published: Public names the flip made visible.
    """

    transform_id: str = ""
    version: int = 0
    retired: Tuple[str, ...] = ()
    published: Tuple[str, ...] = ()


#: Record kinds whose payload describes a data change (directly or, for
#: CLRs, through the embedded compensating action).
DATA_CHANGE_KINDS = ("insert", "delete", "update", "cl")


def data_change_of(record: LogRecord) -> Optional[LogRecord]:
    """Return the data-change payload of ``record``, unwrapping CLRs.

    Returns ``None`` for records that do not describe a data change
    (begin/commit/abort/end, fuzzy marks, CC marks, checkpoints).
    """
    if isinstance(record, CLRecord):
        return record.action
    if isinstance(record, (InsertRecord, DeleteRecord, UpdateRecord)):
        return record
    return None
