"""Lock manager: record/table locks, wait queues, deadlock detection, latches.

The manager is synchronous and single-threaded (the reproduced prototype
interleaves transactions at operation granularity).  A request that cannot
be granted is *enqueued* and :class:`~repro.common.errors.LockWaitError` is
raised; the caller parks the transaction and retries the same operation once
:meth:`LockManager.release_all` (or an unlatch) reports the transaction as
woken.  Retrying re-enters :meth:`acquire`, which recognizes the granted
queued request.

Deadlocks are detected eagerly at enqueue time with a wait-for-graph cycle
check; the requester is the victim and its request is withdrawn.

Table **latches** model the short exclusive pauses the transformation
framework takes during synchronization (Section 3.4): while a table is
latched, every record operation on it waits.  Latches are not owned by
transactions and are not subject to deadlock detection (they are held for
one bounded final propagation only).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import DeadlockError, LockWaitError
from repro.concurrency.locks import (
    LockMode,
    LockOrigin,
    compatible,
)
from repro.obs import NULL_METRICS, Metrics


@dataclass
class LockRequest:
    """One transaction's (granted or waiting) claim on a resource."""

    txn_id: int
    mode: LockMode
    origin: LockOrigin = LockOrigin.NATIVE
    granted: bool = False


class _ResourceState:
    """Granted set and FIFO wait queue for one resource."""

    __slots__ = ("granted", "waiting")

    def __init__(self) -> None:
        self.granted: List[LockRequest] = []
        self.waiting: Deque[LockRequest] = deque()

    def granted_for(self, txn_id: int) -> Optional[LockRequest]:
        for request in self.granted:
            if request.txn_id == txn_id:
                return request
        return None

    def waiting_for(self, txn_id: int) -> Optional[LockRequest]:
        for request in self.waiting:
            if request.txn_id == txn_id:
                return request
        return None

    def empty(self) -> bool:
        return not self.granted and not self.waiting


class LockManager:
    """All locks and latches of one database."""

    def __init__(self, metrics: Optional[Metrics] = None) -> None:
        self._resources: Dict[tuple, _ResourceState] = {}
        self._txn_resources: Dict[int, Set[tuple]] = {}
        #: Resources on which a transaction has an ungranted queued
        #: request.  Must be purged on release_all: a request left behind
        #: by an aborted transaction would later be granted to a dead
        #: owner and starve every subsequent waiter.
        self._txn_waiting: Dict[int, Set[tuple]] = {}
        self._latches: Dict[str, str] = {}
        self._latch_waiters: Dict[str, List[int]] = {}
        #: Clock reading at latch acquisition, for hold-time accounting.
        self._latch_since: Dict[str, float] = {}
        #: Observability registry (``lock.waits``, ``lock.deadlocks``,
        #: ``latch.hold_time``, ...); the no-op singleton by default.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Statistics: total waits, deadlocks (read by the simulator).
        self.wait_count = 0
        self.deadlock_count = 0

    # -- lock acquisition ------------------------------------------------------

    def acquire(self, txn_id: int, resource: tuple, mode: LockMode,
                origin: LockOrigin = LockOrigin.NATIVE) -> None:
        """Acquire (or wait for) ``mode`` on ``resource`` for ``txn_id``.

        Returns normally once the lock is held.  If the lock cannot be
        granted now, the request is enqueued and :class:`LockWaitError` is
        raised; a retry after wake-up finds the granted request and returns.
        Raises :class:`DeadlockError` (withdrawing the request) if waiting
        would close a wait-for cycle.
        """
        state = self._resources.get(resource)
        if state is None:
            state = self._resources[resource] = _ResourceState()

        own = state.granted_for(txn_id)
        if own is not None:
            if own.mode.covers(mode):
                return
            # Upgrade to the join of the held and requested modes.
            upgraded = own.mode.join(mode)
            others = [g for g in state.granted if g.txn_id != txn_id]
            if all(compatible(g.mode, g.origin, upgraded, origin)
                   for g in others):
                own.mode = upgraded
                own.origin = origin if origin.is_source else own.origin
                return
            waiter = state.waiting_for(txn_id)
            if waiter is None:
                waiter = LockRequest(txn_id, upgraded, origin)
                state.waiting.appendleft(waiter)  # upgrades queue-jump
                self._remember_waiting(txn_id, resource)
            self._check_deadlock(txn_id, resource)
            self.wait_count += 1
            self.metrics.inc("lock.waits")
            self._blame_begin(txn_id, resource, state, upgraded, origin)
            raise LockWaitError(resource, txn_id)

        waiter = state.waiting_for(txn_id)
        if waiter is not None:
            if waiter.granted:
                state.waiting.remove(waiter)
                state.granted.append(waiter)
                self._remember(txn_id, resource)
                return
            self._check_deadlock(txn_id, resource)
            raise LockWaitError(resource, txn_id)

        if self._grantable(state, mode, origin, txn_id):
            state.granted.append(LockRequest(txn_id, mode, origin, True))
            self._remember(txn_id, resource)
            return

        state.waiting.append(LockRequest(txn_id, mode, origin))
        self._remember_waiting(txn_id, resource)
        try:
            self._check_deadlock(txn_id, resource)
        except DeadlockError:
            self._withdraw(state, txn_id)
            self._forget_waiting(txn_id, resource)
            raise
        self.wait_count += 1
        self.metrics.inc("lock.waits")
        self._blame_begin(txn_id, resource, state, mode, origin)
        raise LockWaitError(resource, txn_id)

    def _blame_begin(self, txn_id: int, resource: tuple,
                     state: _ResourceState, mode: LockMode,
                     origin: LockOrigin) -> None:
        """Open a blame wait edge against the owners standing in the way.

        Holders are the incompatible granted owners at enqueue time; when
        the block is purely FIFO fairness (a conflicting waiter queued
        ahead), that waiter is the blocker instead.  Idempotent per
        (waiter, resource) -- retries never restart the clock.
        """
        if not self.metrics.enabled:
            return
        holders = [g.txn_id for g in state.granted
                   if g.txn_id != txn_id
                   and not compatible(g.mode, g.origin, mode, origin)]
        if not holders:
            holders = [w.txn_id for w in state.waiting
                       if w.txn_id != txn_id
                       and not compatible(w.mode, w.origin, mode, origin)]
        self.metrics.blame.begin_wait(txn_id, resource, holders, "lock")

    def try_acquire(self, txn_id: int, resource: tuple, mode: LockMode,
                    origin: LockOrigin = LockOrigin.NATIVE) -> bool:
        """Acquire without waiting; return False instead of enqueueing."""
        state = self._resources.get(resource)
        if state is None:
            state = self._resources[resource] = _ResourceState()
        own = state.granted_for(txn_id)
        if own is not None and own.mode.covers(mode):
            return True
        if own is None and self._grantable(state, mode, origin, txn_id):
            state.granted.append(LockRequest(txn_id, mode, origin, True))
            self._remember(txn_id, resource)
            return True
        if own is not None:
            upgraded = own.mode.join(mode)
            others = [g for g in state.granted if g.txn_id != txn_id]
            if all(compatible(g.mode, g.origin, upgraded, origin)
                   for g in others):
                own.mode = upgraded
                return True
        return False

    def grant_direct(self, txn_id: int, resource: tuple, mode: LockMode,
                     origin: LockOrigin) -> None:
        """Install a lock without compatibility checking.

        Used by the synchronization step to *materialize* the locks the
        propagator maintained on the transformed tables during the
        transformation (Section 3.3: "they are ignored for now").  By
        construction, only mutually compatible source-origin locks are ever
        materialized, and no native lock can exist yet because the
        transformed table was not publicly visible.
        """
        state = self._resources.get(resource)
        if state is None:
            state = self._resources[resource] = _ResourceState()
        own = state.granted_for(txn_id)
        if own is not None:
            own.mode = own.mode.join(mode)
            own.origin = origin
            return
        state.granted.append(LockRequest(txn_id, mode, origin, True))
        self._remember(txn_id, resource)

    def _grantable(self, state: _ResourceState, mode: LockMode,
                   origin: LockOrigin, txn_id: int) -> bool:
        if any(not compatible(g.mode, g.origin, mode, origin)
               for g in state.granted if g.txn_id != txn_id):
            return False
        # FIFO fairness: do not overtake existing waiters with a
        # conflicting request.
        for waiter in state.waiting:
            if not compatible(waiter.mode, waiter.origin, mode, origin):
                return False
        return True

    def _remember(self, txn_id: int, resource: tuple) -> None:
        self._txn_resources.setdefault(txn_id, set()).add(resource)
        self._forget_waiting(txn_id, resource)

    def _remember_waiting(self, txn_id: int, resource: tuple) -> None:
        self._txn_waiting.setdefault(txn_id, set()).add(resource)

    def _forget_waiting(self, txn_id: int, resource: tuple) -> None:
        waiting = self._txn_waiting.get(txn_id)
        if waiting is not None:
            waiting.discard(resource)
            if not waiting:
                del self._txn_waiting[txn_id]

    def _withdraw(self, state: _ResourceState, txn_id: int) -> None:
        waiter = state.waiting_for(txn_id)
        if waiter is not None:
            state.waiting.remove(waiter)

    # -- release ------------------------------------------------------------------

    def release(self, txn_id: int, resource: tuple) -> List[int]:
        """Release one lock; returns ids of transactions woken by grants."""
        state = self._resources.get(resource)
        if state is None:
            return []
        own = state.granted_for(txn_id)
        if own is not None:
            state.granted.remove(own)
        else:
            self._withdraw(state, txn_id)
            self._forget_waiting(txn_id, resource)
            self.metrics.blame.end_wait(txn_id, resource,
                                        outcome="abandoned")
        held = self._txn_resources.get(txn_id)
        if held is not None:
            held.discard(resource)
        woken = self._promote(resource, state)
        if state.empty():
            self._resources.pop(resource, None)
        return woken

    def release_all(self, txn_id: int) -> List[int]:
        """Release every lock of a transaction (end of strict 2PL).

        Returns the ids of transactions whose queued requests became
        granted; the caller (simulator or session driver) re-schedules them.
        """
        resources = self._txn_resources.pop(txn_id, set())
        resources |= self._txn_waiting.pop(txn_id, set())
        # Any wait this transaction still had open (lock, latch or
        # blocked-table) ends here as abandoned: strict 2PL release is
        # the common exit of commit, abort and deadlock-victim paths.
        # Scoped roles (a lazy-miss marking) die with the transaction.
        self.metrics.blame.abandon_waits(txn_id)
        self.metrics.blame.clear_role(txn_id)
        woken: List[int] = []
        for resource in list(resources):
            state = self._resources.get(resource)
            if state is None:
                continue
            own = state.granted_for(txn_id)
            if own is not None:
                state.granted.remove(own)
            self._withdraw(state, txn_id)
            woken.extend(self._promote(resource, state))
            if state.empty():
                self._resources.pop(resource, None)
        return woken

    def _promote(self, resource: tuple, state: _ResourceState) -> List[int]:
        """Grant queued requests now compatible, FIFO; return woken txns."""
        woken: List[int] = []
        changed = True
        while changed:
            changed = False
            for waiter in list(state.waiting):
                if all(compatible(g.mode, g.origin, waiter.mode,
                                  waiter.origin)
                       for g in state.granted
                       if g.txn_id != waiter.txn_id):
                    state.waiting.remove(waiter)
                    own = state.granted_for(waiter.txn_id)
                    if own is not None:
                        own.mode = own.mode.join(waiter.mode)
                    else:
                        waiter.granted = True
                        state.granted.append(waiter)
                        self._remember(waiter.txn_id, resource)
                    self.metrics.blame.end_wait(waiter.txn_id, resource)
                    woken.append(waiter.txn_id)
                    changed = True
                else:
                    break  # strict FIFO beyond the first blocked waiter
        return woken

    # -- introspection ----------------------------------------------------------------

    def holders(self, resource: tuple) -> List[LockRequest]:
        """Granted requests on a resource."""
        state = self._resources.get(resource)
        return list(state.granted) if state else []

    def holds(self, txn_id: int, resource: tuple,
              mode: Optional[LockMode] = None) -> bool:
        """Whether the transaction holds (at least) ``mode`` on resource."""
        state = self._resources.get(resource)
        if state is None:
            return False
        own = state.granted_for(txn_id)
        if own is None:
            return False
        return True if mode is None else own.mode.covers(mode)

    def locks_of(self, txn_id: int) -> Set[tuple]:
        """Resources on which the transaction holds locks."""
        return set(self._txn_resources.get(txn_id, set()))

    def waiting_txns(self) -> Set[int]:
        """Ids of transactions with a queued (ungranted) request."""
        result: Set[int] = set()
        for state in self._resources.values():
            for waiter in state.waiting:
                if not waiter.granted:
                    result.add(waiter.txn_id)
        return result

    # -- deadlock detection ------------------------------------------------------------

    def _check_deadlock(self, txn_id: int, resource: tuple) -> None:
        """Raise :class:`DeadlockError` if ``txn_id`` waiting closes a cycle."""
        graph = self._wait_for_graph()
        # DFS from txn_id looking for a path back to txn_id.
        stack: List[Tuple[int, Tuple[int, ...]]] = [(txn_id, (txn_id,))]
        seen: Set[int] = set()
        while stack:
            node, path = stack.pop()
            for successor in graph.get(node, ()):  # holders node waits for
                if successor == txn_id:
                    self.deadlock_count += 1
                    self.metrics.inc("lock.deadlocks")
                    raise DeadlockError(txn_id, path)
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, path + (successor,)))

    def _wait_for_graph(self) -> Dict[int, Set[int]]:
        graph: Dict[int, Set[int]] = {}
        for state in self._resources.values():
            ahead: List[LockRequest] = list(state.granted)
            for waiter in state.waiting:
                if waiter.granted:
                    ahead.append(waiter)
                    continue
                blockers = {
                    other.txn_id
                    for other in ahead
                    if other.txn_id != waiter.txn_id
                    and not compatible(other.mode, other.origin,
                                       waiter.mode, waiter.origin)
                }
                if blockers:
                    graph.setdefault(waiter.txn_id, set()).update(blockers)
                ahead.append(waiter)
        return graph

    # -- table latches -----------------------------------------------------------------

    def latch_table(self, table: str, owner: str) -> None:
        """Take the exclusive table latch (transformation sync only)."""
        current = self._latches.get(table)
        if current is not None and current != owner:
            raise LockWaitError(("latch", table), -1)
        if current is None and self.metrics.enabled:
            self._latch_since[table] = self.metrics.now()
            self.metrics.inc("latch.acquired")
            self.metrics.trace("latch.acquire", table=table, owner=owner)
        self._latches[table] = owner

    def unlatch_table(self, table: str, owner: str) -> List[int]:
        """Drop the latch; returns transaction ids waiting on it."""
        if self._latches.get(table) == owner:
            del self._latches[table]
            if self.metrics.enabled:
                since = self._latch_since.pop(table, None)
                held = 0.0 if since is None else self.metrics.now() - since
                self.metrics.inc("latch.released")
                self.metrics.observe("latch.hold_time", held)
                self.metrics.trace("latch.release", table=table,
                                   owner=owner, held=held)
        waiters = self._latch_waiters.pop(table, [])
        for waiter in waiters:
            self.metrics.blame.end_wait(waiter, ("latch", table))
        return waiters

    def is_latched(self, table: str) -> bool:
        """Whether the table is currently latched."""
        return table in self._latches

    def check_latch(self, table: str, txn_id: int) -> None:
        """Raise :class:`LockWaitError` (and register the waiter) if latched."""
        if table in self._latches:
            waiters = self._latch_waiters.setdefault(table, [])
            if txn_id not in waiters:
                waiters.append(txn_id)
            self.wait_count += 1
            self.metrics.inc("latch.waits")
            self.metrics.blame.begin_wait(
                txn_id, ("latch", table), (self._latches[table],), "latch")
            raise LockWaitError(("latch", table), txn_id)
