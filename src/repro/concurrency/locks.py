"""Lock modes, lock origins, and compatibility rules.

Two compatibility regimes exist side by side:

* the **standard** shared/exclusive matrix used for ordinary record locks
  and table locks (S-S compatible, everything else conflicting);
* the paper's **Figure 2 matrix** for locks on a transformed table during
  non-blocking synchronization (Section 4.3).  Locks transferred from the
  source tables R and S carry their *origin*; because operations on R and S
  never modify the same attributes of a joined row, source-origin locks are
  mutually compatible in T even in write mode, while locks taken natively on
  T conflict with source-origin writes (and native writes conflict with
  everything).

The same regime serves split transformations (one source, two targets): all
mirrored locks carry a source origin and are mutually compatible, because
any real conflict would already have been resolved in the source table.
"""

from __future__ import annotations

from enum import Enum


class LockMode(Enum):
    """Lock modes, including multigranularity intention modes.

    Record locks use S/X; table-level locks add the classic intention
    modes (the extension Section 4.3 mentions: "the compatibility matrix
    can easily be extended to multigranularity locking"):

    * ``IS`` / ``IX`` -- intent to take S / X locks on contained records;
    * ``S`` / ``X`` -- whole-granule shared / exclusive;
    * ``SIX`` -- S on the granule plus intent to X individual records.
    """

    IS = "IS"
    IX = "IX"
    S = "S"
    SIX = "SIX"
    X = "X"

    @property
    def is_write(self) -> bool:
        """Whether this mode implies (intent to) write."""
        return self in (LockMode.IX, LockMode.SIX, LockMode.X)

    def covers(self, other: "LockMode") -> bool:
        """Whether holding this mode also satisfies a request for ``other``.

        Follows the standard mode lattice: IS < {IX, S} < SIX < X.
        """
        return other in _COVERS[self]

    def join(self, other: "LockMode") -> "LockMode":
        """Least mode covering both (the upgrade target)."""
        if self.covers(other):
            return self
        if other.covers(self):
            return other
        # The only incomparable covered pairs join at SIX (IX vs S);
        # everything else escalates to X.
        if {self, other} == {LockMode.IX, LockMode.S}:
            return LockMode.SIX
        return LockMode.X


#: For each mode, the set of modes it covers (reflexive).
_COVERS = {
    LockMode.IS: {LockMode.IS},
    LockMode.IX: {LockMode.IS, LockMode.IX},
    LockMode.S: {LockMode.IS, LockMode.S},
    LockMode.SIX: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
    LockMode.X: set(LockMode),
}

#: The classic multigranularity compatibility matrix.
_STANDARD_COMPAT = {
    LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
    LockMode.IX: {LockMode.IS, LockMode.IX},
    LockMode.S: {LockMode.IS, LockMode.S},
    LockMode.SIX: {LockMode.IS},
    LockMode.X: set(),
}


class LockOrigin(Enum):
    """Which table's concurrency domain a lock was acquired in.

    ``NATIVE`` locks were requested directly on the resource's own table by
    an ordinary transaction.  ``SOURCE_A`` / ``SOURCE_B`` mark locks
    *transferred* by the transformation framework from the first / second
    source table (R / S for a full outer join; a split has only one source,
    ``SOURCE_A``).
    """

    NATIVE = "T"
    SOURCE_A = "R"
    SOURCE_B = "S"

    @property
    def is_source(self) -> bool:
        """Whether the lock was mirrored from a source table."""
        return self is not LockOrigin.NATIVE


def standard_compatible(held: LockMode, requested: LockMode) -> bool:
    """The classic multigranularity compatibility matrix.

    Restricted to {S, X} this is the usual shared/exclusive rule; the
    intention modes follow Gray's hierarchy (IS compatible with all but X,
    IX with the intentions, SIX with IS only).
    """
    return requested in _STANDARD_COMPAT[held]


def figure2_compatible(held_mode: LockMode, held_origin: LockOrigin,
                       req_mode: LockMode, req_origin: LockOrigin) -> bool:
    """The paper's Figure 2 matrix for locks on a transformed table.

    Rules (symmetric):

    * source-origin vs. source-origin: always compatible -- a genuine
      conflict would have surfaced in the source table already, and R- and
      S-side operations touch disjoint attributes of the joined row;
    * native write vs. anything: conflict;
    * native read vs. source read: compatible; native read vs. source
      write: conflict;
    * native vs. native: standard S/X.

    The multigranularity extension (Section 4.3's closing remark) treats
    any intent-to-write mode (IX, SIX) as a write -- conservative but
    safe, since the mirrored locks cannot tell which records the intent
    will reach.
    """
    if held_origin.is_source and req_origin.is_source:
        return True
    if held_origin is LockOrigin.NATIVE and req_origin is LockOrigin.NATIVE:
        return standard_compatible(held_mode, req_mode)
    # Exactly one side is native.
    native_mode = held_mode if held_origin is LockOrigin.NATIVE else req_mode
    source_mode = req_mode if held_origin is LockOrigin.NATIVE else held_mode
    if native_mode.is_write:
        return False
    return not source_mode.is_write


def compatible(held_mode: LockMode, held_origin: LockOrigin,
               req_mode: LockMode, req_origin: LockOrigin) -> bool:
    """Dispatch to Figure 2 when any origin is a source, else standard."""
    if held_origin.is_source or req_origin.is_source:
        return figure2_compatible(held_mode, held_origin,
                                  req_mode, req_origin)
    return standard_compatible(held_mode, req_mode)


def record_resource(table: str, key: tuple) -> tuple:
    """Lock-manager resource id for a record."""
    return ("rec", table, tuple(key))


def table_resource(table: str) -> tuple:
    """Lock-manager resource id for a whole table."""
    return ("tab", table)
