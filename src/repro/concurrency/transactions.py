"""Transactions and the active-transaction table.

The transaction manager tracks life-cycle state and the per-transaction
bookkeeping the rest of the system needs:

* the **undo chain** head (``last_lsn``) and ``first_lsn``, used by rollback
  and by the transformation framework: the begin fuzzy mark embeds the
  identifiers of active transactions, and log propagation starts from "the
  oldest log record of any transaction that was active when the first fuzzy
  mark was written" (Section 3.3);
* the set of **tables touched**, used by the synchronization strategies to
  decide which transactions must drain (blocking commit), be aborted
  (non-blocking abort) or be tracked to completion (non-blocking commit);
* a **doomed** marker: a doomed transaction's next operation raises
  :class:`~repro.common.errors.TransactionAbortedError`, which triggers its
  rollback -- this is how non-blocking abort "forces" old transactions to
  abort without ripping state out from under them mid-operation.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import TransactionStateError
from repro.wal.records import NULL_LSN


class TxnState(Enum):
    """Life-cycle state of a transaction."""

    ACTIVE = "active"
    ROLLING_BACK = "rolling_back"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A single transaction's control block."""

    __slots__ = (
        "txn_id", "state", "first_lsn", "last_lsn", "tables_touched",
        "doomed", "doom_reason", "start_time", "snapshot",
    )

    def __init__(self, txn_id: int, start_time: float = 0.0) -> None:
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self.first_lsn = NULL_LSN
        self.last_lsn = NULL_LSN
        self.tables_touched: Set[str] = set()
        self.doomed = False
        self.doom_reason = ""
        self.start_time = start_time
        #: MVCC snapshot pin (:class:`repro.storage.mvcc.SnapshotHandle`)
        #: when the database runs with the multi-version overlay enabled;
        #: ``None`` under the default latch-based storage.
        self.snapshot = None

    @property
    def is_active(self) -> bool:
        """Whether the transaction can still execute operations."""
        return self.state is TxnState.ACTIVE

    @property
    def is_finished(self) -> bool:
        """Whether the transaction has reached a terminal state."""
        return self.state in (TxnState.COMMITTED, TxnState.ABORTED)

    def note_record(self, lsn: int) -> None:
        """Record a newly appended log record in the undo chain."""
        if self.first_lsn == NULL_LSN:
            self.first_lsn = lsn
        self.last_lsn = lsn

    def doom(self, reason: str) -> None:
        """Mark the transaction for forced abort at its next operation."""
        if not self.is_finished:
            self.doomed = True
            self.doom_reason = reason

    def __repr__(self) -> str:
        flags = " doomed" if self.doomed else ""
        return f"Txn({self.txn_id}, {self.state.value}{flags})"


class TransactionManager:
    """Allocates transaction ids and tracks all transaction control blocks."""

    def __init__(self) -> None:
        self._next_id = 1
        self._txns: Dict[int, Transaction] = {}

    def begin(self, start_time: float = 0.0) -> Transaction:
        """Create a new active transaction."""
        txn = Transaction(self._next_id, start_time)
        self._next_id += 1
        self._txns[txn.txn_id] = txn
        return txn

    def get(self, txn_id: int) -> Transaction:
        """Control block by id."""
        try:
            return self._txns[txn_id]
        except KeyError:
            raise TransactionStateError(f"unknown transaction {txn_id}") \
                from None

    def exists(self, txn_id: int) -> bool:
        """Whether the id is known (active or finished)."""
        return txn_id in self._txns

    # -- active-transaction-table queries -------------------------------------

    def active_txns(self) -> List[Transaction]:
        """All transactions not yet in a terminal state."""
        return [t for t in self._txns.values() if not t.is_finished]

    def active_ids(self) -> List[int]:
        """Ids of all non-terminal transactions, ascending."""
        return sorted(t.txn_id for t in self.active_txns())

    def active_on(self, tables: Iterable[str]) -> List[Transaction]:
        """Active transactions that have touched any of ``tables``.

        This is the subset of the active-transaction table that a begin
        fuzzy mark embeds (Section 3.2: "the transaction identifiers of all
        transactions that are active on the source tables").
        """
        table_set = set(tables)
        return [
            t for t in self.active_txns()
            if t.tables_touched & table_set
        ]

    def oldest_first_lsn(self, txn_ids: Iterable[int]) -> int:
        """Smallest ``first_lsn`` among the given transactions.

        Returns ``NULL_LSN`` if none of them has logged anything -- the
        propagation start point then falls back to the fuzzy mark itself.
        """
        lsns = [
            self._txns[i].first_lsn
            for i in txn_ids
            if i in self._txns and self._txns[i].first_lsn != NULL_LSN
        ]
        return min(lsns) if lsns else NULL_LSN

    def doom_transactions(self, txn_ids: Iterable[int], reason: str) -> None:
        """Doom every listed transaction (non-blocking abort sync)."""
        for txn_id in txn_ids:
            txn = self._txns.get(txn_id)
            if txn is not None:
                txn.doom(reason)

    def forget_finished(self, keep_last: int = 1000) -> None:
        """Garbage-collect old terminal control blocks (long simulations)."""
        finished = [i for i, t in self._txns.items() if t.is_finished]
        if len(finished) > keep_last:
            for txn_id in sorted(finished)[:-keep_last]:
                del self._txns[txn_id]
