"""Concurrency control: lock modes, lock manager, transactions."""

from repro.concurrency.lock_manager import LockManager, LockRequest
from repro.concurrency.locks import (
    LockMode,
    LockOrigin,
    compatible,
    figure2_compatible,
    record_resource,
    standard_compatible,
    table_resource,
)
from repro.concurrency.transactions import (
    Transaction,
    TransactionManager,
    TxnState,
)

__all__ = [
    "LockManager",
    "LockMode",
    "LockOrigin",
    "LockRequest",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "compatible",
    "figure2_compatible",
    "record_resource",
    "standard_compatible",
    "table_resource",
]
