"""Compiling and running migration plans: the executable half of the API.

:class:`PlanExecutor` turns a validated :class:`MigrationPlan` into a
chain of supervised online transformations.  Each step is compiled to a
transformation *factory* (so every supervisor retry re-derives its spec
from the then-current catalog) and driven to completion by a
:class:`~repro.transform.supervisor.TransformationSupervisor` before the
next step starts; the per-step run report carries the supervisor's
attempt history, the published tables with row counts, and -- under
``observe=True`` -- a fresh per-step metrics snapshot with the
interference blame breakdown.

Crash resume rides on the WAL, not on executor state: a step that
reached its swap point left a
:class:`~repro.wal.records.TransformSwapRecord` carrying the step's
deterministic transform id (``"<plan_id>.<step_id>"``).  After restart
recovery, :meth:`PlanExecutor.completed_step_ids` scans the salvaged log
for those ids (minus any later
:class:`~repro.wal.records.TransformRetireRecord`), and
``run(resume=True)`` replays completed steps as no-ops -- recovery
already rebuilt their published tables -- and re-runs the chain from the
first step that had not swapped.

:func:`run_plan` is the one-call convenience wrapper, and
:class:`PlanStepper` adapts a plan to the simulator's background-work
interface (one :meth:`~PlanStepper.step` budget at a time) so a whole
chain can run under an interleaved transaction workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import PlanValidationError
from repro.engine.database import Database
from repro.obs.metrics import Metrics
from repro.obs.report import run_section
from repro.plan.operators import PLAN_OPERATORS
from repro.plan.spec import PLAN_OPTION_FIELDS, MigrationPlan, MigrationStep
from repro.plan.validate import PlanValidator
from repro.transform.base import StepReport, Transformation
from repro.transform.options import TransformOptions
from repro.transform.supervisor import TransformationSupervisor
from repro.wal.records import TransformRetireRecord, TransformSwapRecord


class PlanExecutor:
    """Runs one migration plan against one database.

    Args:
        db: The live database.
        plan: The plan to execute.
        validate: Run the :class:`~repro.plan.validate.PlanValidator`
            before touching anything (on by default; turn off only when
            the same plan object was already validated against this
            database).
        observe: Attach a fresh :class:`~repro.obs.metrics.Metrics`
            registry per step, yielding per-step snapshots and blame
            breakdowns in the report (the database's original registry is
            restored afterwards).
        supervisor_kwargs: Extra keyword arguments forwarded to every
            step's :class:`TransformationSupervisor` (budget,
            max_attempts, backoff knobs, ...).
    """

    def __init__(self, db: Database, plan: MigrationPlan, *,
                 validate: bool = True, observe: bool = False,
                 supervisor_kwargs: Optional[Dict[str, object]] = None
                 ) -> None:
        self.db = db
        self.plan = plan
        self.validate = validate
        self.observe = observe
        self.supervisor_kwargs = dict(supervisor_kwargs or {})

    # -- resume ----------------------------------------------------------

    def completed_step_ids(self) -> List[str]:
        """Step ids whose swap records survive in the database's log.

        A step is *completed* once its swap record is durable: recovery
        rebuilds its published tables from that record, so re-running the
        step would be both impossible (its sources are retired) and
        wrong.  A later retire record cancels the swap, exactly as in
        restart recovery.  The completed steps must form a prefix of the
        plan -- steps run in order, so a gap means the log belongs to a
        different plan (or a different version of this one).
        """
        by_transform_id = {self.plan.transform_id(step): step.step_id
                           for step in self.plan.steps}
        swapped: set = set()
        retired: set = set()
        for record in self.db.log.scan():
            if isinstance(record, TransformSwapRecord):
                if record.transform_id in by_transform_id:
                    swapped.add(record.transform_id)
            elif isinstance(record, TransformRetireRecord):
                retired.add(record.transform_id)
        completed = [by_transform_id[tid] for tid in sorted(swapped - retired,
                     key=lambda tid: self.plan.step_ids().index(
                         by_transform_id[tid]))]
        prefix = self.plan.step_ids()[:len(completed)]
        if completed != prefix:
            raise PlanValidationError(self.plan.plan_id, [
                f"completed steps {completed} are not a prefix of the "
                f"plan's steps {self.plan.step_ids()}; the log does not "
                "match this plan"])
        return completed

    # -- execution -------------------------------------------------------

    def run(self, resume: bool = False) -> Dict[str, object]:
        """Execute the plan; returns the run report.

        With ``resume=True``, steps whose swap records survive in the log
        are replayed as no-ops (status ``"replayed"``) and execution
        continues from the first incomplete step -- the crash-recovery
        path.  Without it the plan must start from scratch.
        """
        completed = self.completed_step_ids() if resume else []
        if self.validate:
            PlanValidator(self.db).validate(self.plan, completed)
        original_metrics = self.db.metrics
        steps: List[Dict[str, object]] = []
        try:
            for step in self.plan.steps:
                if step.step_id in completed:
                    steps.append({
                        "step_id": step.step_id,
                        "operator": step.operator,
                        "transform_id": self.plan.transform_id(step),
                        "status": "replayed",
                        "published": self._published_counts(step),
                    })
                    continue
                steps.append(self._run_step(step))
        finally:
            if self.observe:
                self.db.attach_metrics(original_metrics)
        return {
            "plan_id": self.plan.plan_id,
            "description": self.plan.description,
            "resumed": bool(completed),
            "steps": steps,
        }

    def _run_step(self, step: MigrationStep) -> Dict[str, object]:
        op = PLAN_OPERATORS[step.operator]
        options = self.step_options(step)
        metrics: Optional[Metrics] = None
        if self.observe:
            metrics = Metrics()
            self.db.attach_metrics(metrics)

        def factory() -> Transformation:
            return op.build(self.db, step.params, options)

        supervisor = TransformationSupervisor(self.db, factory,
                                              **self.supervisor_kwargs)
        supervisor.run()
        snapshot = metrics.snapshot() if metrics is not None else None
        report: Dict[str, object] = {
            "step_id": step.step_id,
            "operator": step.operator,
            "transform_id": options.transform_id,
            "status": "done",
            "published": self._published_counts(step),
            "supervisor": dict(supervisor.stats),
            "attempts": list(supervisor.history),
        }
        if snapshot is not None:
            report["blame"] = snapshot.get("blame")
            report["section"] = run_section(
                options.transform_id, metrics=snapshot,
                meta={"operator": step.operator,
                      "sync": str(options.sync)})
        return report

    def step_options(self, step: MigrationStep) -> TransformOptions:
        """The step's effective options: plan defaults under step
        overrides, plus the deterministic transform id."""
        merged = {**self.plan.defaults, **step.options}
        merged = {k: v for k, v in merged.items() if k in PLAN_OPTION_FIELDS}
        return TransformOptions(
            **merged, transform_id=self.plan.transform_id(step))

    def _published_counts(self, step: MigrationStep) -> Dict[str, int]:
        """Row counts of the step's published tables, from the catalog."""
        op = PLAN_OPERATORS[step.operator]
        schemas = {name: self.db.catalog.get_any(name).schema
                   for name in self.db.catalog.table_names()}
        try:
            published, _ = op.derive(schemas, step.params)
        except Exception:
            # After the step ran, its sources are retired, so its derive
            # cannot be replayed against the live catalog; fall back to
            # the published tables that do exist.
            published = {}
            for name in ("target_name", "r_name", "s_name",
                         "a_name", "b_name"):
                table = step.params.get(name)
                if isinstance(table, str) and self.db.catalog.exists(table):
                    published[table] = None
        return {name: sum(1 for _ in self.db.catalog.get_any(name).scan())
                for name in published
                if self.db.catalog.exists(name)}


def run_plan(db: Database, plan: MigrationPlan, *, resume: bool = False,
             validate: bool = True, observe: bool = False,
             supervisor_kwargs: Optional[Dict[str, object]] = None
             ) -> Dict[str, object]:
    """Validate and execute ``plan`` against ``db``; returns the report.

    The primary entry point of the plan API::

        plan = MigrationPlan.from_json(text)
        report = run_plan(db, plan, observe=True)

    After a crash, salvage the log, run restart recovery, and call
    ``run_plan(db, plan, resume=True)``: completed steps are replayed
    from their WAL swap records and the in-flight step re-runs.
    """
    return PlanExecutor(db, plan, validate=validate, observe=observe,
                        supervisor_kwargs=supervisor_kwargs).run(
                            resume=resume)


class PlanStepper:
    """Adapts a plan to the simulator's background-work interface.

    The simulated :class:`~repro.sim.server.Server` drives background
    work one budget at a time (``report = background.step(budget)``); a
    ``PlanStepper`` presents a whole plan as one such unit, advancing to
    the next step's transformation when the current one completes and
    reporting ``done`` only after the last.  No supervisor is involved:
    under the simulator, retry policy belongs to the scenario.
    """

    def __init__(self, db: Database, plan: MigrationPlan, *,
                 validate: bool = True) -> None:
        if validate:
            PlanValidator(db).validate(plan)
        self.db = db
        self.plan = plan
        self._index = 0
        self._tf: Optional[Transformation] = None
        self._span = None

    # -- Transformation-compatible surface --------------------------------

    @property
    def _span_parent(self):
        return self._span

    @_span_parent.setter
    def _span_parent(self, value) -> None:
        # The simulator assigns this after construction; forward it to
        # the transformation currently being stepped (and, via
        # :meth:`_ensure_tf`, to every later one).
        self._span = value
        if self._tf is not None:
            self._tf._span_parent = value

    @property
    def transform_id(self) -> str:
        if self._tf is not None:
            return self._tf.transform_id
        return self.plan.plan_id

    @property
    def phase(self):
        return self._tf.phase if self._tf is not None else None

    @property
    def done(self) -> bool:
        """True once the *last* step's transformation completed."""
        return self._index == len(self.plan.steps) - 1 \
            and self._tf is not None and self._tf.done

    @property
    def current_step(self) -> MigrationStep:
        return self.plan.steps[self._index]

    def _ensure_tf(self) -> Transformation:
        if self._tf is None:
            step = self.current_step
            op = PLAN_OPERATORS[step.operator]
            options = PlanExecutor(
                self.db, self.plan, validate=False).step_options(step)
            self._tf = op.build(self.db, step.params, options)
            self._tf._span_parent = self._span
        return self._tf

    def step(self, budget: int) -> StepReport:
        """Run one budget's worth of the current step's transformation."""
        tf = self._ensure_tf()
        report = tf.step(budget)
        if report.done and self._index + 1 < len(self.plan.steps):
            finished = self.current_step.step_id
            self._index += 1
            self._tf = None
            info = dict(report.info)
            info["plan_step_completed"] = finished
            return StepReport(phase=report.phase, units=report.units,
                              done=False, stalled=report.stalled, info=info)
        return report

    def abort(self) -> None:
        if self._tf is not None:
            self._tf.abort()

    def shard_convergence(self) -> Dict[str, object]:
        """Delegate to the current step's transformation (sim reporting)."""
        return self._tf.shard_convergence() if self._tf is not None else {}

    def shard_summary(self) -> Dict[str, object]:
        """Delegate to the current step's transformation (sim reporting)."""
        return self._tf.shard_summary() if self._tf is not None else {}
