"""A fault-swept corpus of migration plans over common schema changes.

Each :class:`CorpusScenario` pairs a seeded source database, a
declarative :class:`~repro.plan.spec.MigrationPlan`, and an offline
oracle of the expected final tables.  The scenarios are drawn from the
schema-evolution *Challenge Problems* checklist (Edwards, Petricek &
van der Storm, arXiv:2309.11406) -- the recurring migrations every
schema-evolution tool is asked to handle -- mapped onto this repo's
online operators:

==========================  =============================================
scenario                    challenge row
==========================  =============================================
``denormalize-foj``         inline / denormalize an association into one
                            table (full outer join, paper Section 4)
``normalize-split``         normalize a denormalized table (vertical
                            split, paper Section 5)
``chain-foj-split``         a multi-step change: denormalize, then
                            re-normalize along a different dependency
``tags-explode``            turn a scalar field into a collection (one
                            row per element)
``archive-partition``       partition rows by a predicate into hot/cold
                            tables
``reunify-merge``           reunify a previously partitioned pair
``retype-default``          change a field's type and its NULL default
==========================  =============================================

The corpus is executable documentation *and* test fodder: each plan is
JSON-round-trippable, runs end-to-end under :func:`repro.plan.run_plan`,
and is swept by ``python -m benchmarks.plan_corpus`` (the ``plan-corpus``
CI job), which also crash-resumes each plan mid-chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.engine.database import Database
from repro.relational.operators import (
    explode,
    full_outer_join,
    normalize_rows,
    retype,
    split,
)
from repro.relational.spec import ExplodeSpec, FojSpec, RetypeSpec, SplitSpec
from repro.plan.spec import MigrationPlan, MigrationStep
from repro.storage.schema import TableSchema
from repro.transform.partition import (
    AttrPredicate,
    PartitionSpec,
    merge_rows,
    partition_rows,
)

Rows = List[Dict[str, object]]


@dataclass(frozen=True)
class CorpusScenario:
    """One challenge-problem migration: seed, plan, and oracle.

    Attributes:
        name: Corpus key (see the module docstring's table).
        challenge: The checklist row the scenario reproduces.
        seeds: Source schemas with their initial rows.
        plan: The declarative migration to run.
        expected: Offline oracle: published table name -> expected rows
            (computed from the seeds by the reference operators, never by
            the online machinery under test).
    """

    name: str
    challenge: str
    seeds: Tuple[Tuple[TableSchema, Tuple[Dict[str, object], ...]], ...]
    plan: MigrationPlan
    expected: Callable[[], Dict[str, Rows]]

    def build(self, db: Database) -> None:
        """Create and populate the scenario's source tables."""
        for schema, rows in self.seeds:
            db.create_table(schema)
            txn = db.begin()
            for values in rows:
                db.insert(txn, schema.name, dict(values))
            db.commit(txn)

    def verify(self, db: Database) -> List[str]:
        """Compare the database against the oracle; returns mismatches."""
        problems: List[str] = []
        for name, want in sorted(self.expected().items()):
            if not db.catalog.exists(name):
                problems.append(f"{self.name}: table {name!r} missing")
                continue
            got = [dict(r.values) for r in db.catalog.get_any(name).scan()]
            if normalize_rows(got) != normalize_rows(want):
                problems.append(
                    f"{self.name}: table {name!r} has {len(got)} row(s), "
                    f"expected {len(want)}; content differs")
        return problems


# -- seeds -------------------------------------------------------------------

_BOOK = TableSchema("book", ["bid", "title", "pub_id"],
                    primary_key=("bid",))
_PUB = TableSchema("pub", ["pid", "pname", "city"], primary_key=("pid",))
_BOOK_ROWS = (
    {"bid": 1, "title": "WAL Design", "pub_id": "p1"},
    {"bid": 2, "title": "Fuzzy Scans", "pub_id": "p1"},
    {"bid": 3, "title": "Log Rules", "pub_id": "p2"},
    {"bid": 4, "title": "Latches", "pub_id": "p9"},   # dangling reference
    {"bid": 5, "title": "Snapshots", "pub_id": "p2"},
)
_PUB_ROWS = (
    {"pid": "p1", "pname": "Acme Press", "city": "Oslo"},
    {"pid": "p2", "pname": "EDBT House", "city": "Munich"},
    {"pid": "p3", "pname": "Idle Books", "city": "Bergen"},  # unmatched
)

_TRACK = TableSchema("track", ["tid", "title", "album", "artist"],
                     primary_key=("tid",))
_TRACK_ROWS = (
    {"tid": 1, "title": "Prepare", "album": "Phases", "artist": "The Scans"},
    {"tid": 2, "title": "Populate", "album": "Phases", "artist": "The Scans"},
    {"tid": 3, "title": "Propagate", "album": "Phases",
     "artist": "The Scans"},
    {"tid": 4, "title": "Sync", "album": "Locks", "artist": "Latch Choir"},
    {"tid": 5, "title": "Swap", "album": "Locks", "artist": "Latch Choir"},
)

_EMP = TableSchema("emp", ["eid", "ename", "dept_id"], primary_key=("eid",))
_DEPT = TableSchema("dept", ["did", "dname", "floor"], primary_key=("did",))
_EMP_ROWS = (
    {"eid": 1, "ename": "ada", "dept_id": "d1"},
    {"eid": 2, "ename": "bob", "dept_id": "d1"},
    {"eid": 3, "ename": "cyn", "dept_id": "d2"},
    {"eid": 4, "ename": "dee", "dept_id": "d9"},   # dangling department
    {"eid": 5, "ename": "eli", "dept_id": "d2"},
)
_DEPT_ROWS = (
    {"did": "d1", "dname": "storage", "floor": 2},
    {"did": "d2", "dname": "recovery", "floor": 3},
)

_DOC = TableSchema("doc", ["id", "title", "tags"], primary_key=("id",))
_DOC_ROWS = (
    {"id": 1, "title": "intro", "tags": "wal,log"},
    {"id": 2, "title": "design", "tags": "schema"},
    {"id": 3, "title": "eval", "tags": None},        # null-padded child
    {"id": 4, "title": "relwork", "tags": "wal,schema,log"},
    {"id": 5, "title": "appendix", "tags": "log,log"},  # deduplicated
)

_ORDERS = TableSchema("orders", ["oid", "region", "qty"],
                      primary_key=("oid",))
_ORDERS_ROWS = (
    {"oid": 1, "region": "eu", "qty": 3},
    {"oid": 2, "region": "us", "qty": 1},
    {"oid": 3, "region": "eu", "qty": 7},
    {"oid": 4, "region": "ap", "qty": 2},
    {"oid": 5, "region": None, "qty": 5},            # NULL compares false
    {"oid": 6, "region": "eu", "qty": 4},
)

_EVT_A = TableSchema("evt_a", ["eid", "payload"], primary_key=("eid",))
_EVT_B = TableSchema("evt_b", ["eid", "payload"], primary_key=("eid",))
_EVT_A_ROWS = tuple({"eid": i, "payload": f"a{i}"} for i in (2, 4, 6, 8))
_EVT_B_ROWS = tuple({"eid": i, "payload": f"b{i}"} for i in (1, 3, 5, 7))

_READING = TableSchema("reading", ["rid", "label", "value"],
                       primary_key=("rid",))
_READING_ROWS = (
    {"rid": 1, "label": "t0", "value": "17"},
    {"rid": 2, "label": "t1", "value": " 42 "},      # cast strips blanks
    {"rid": 3, "label": "t2", "value": None},        # takes the new default
    {"rid": 4, "label": "t3", "value": "0"},
    {"rid": 5, "label": "t4", "value": "-3"},
)


# -- oracles -----------------------------------------------------------------


def _expected_book_pub() -> Dict[str, Rows]:
    spec = FojSpec.derive(_BOOK, _PUB, "book_pub", "pub_id", "pid")
    return {"book_pub": full_outer_join(
        spec, [dict(r) for r in _BOOK_ROWS], [dict(r) for r in _PUB_ROWS])}


def _expected_track_split() -> Dict[str, Rows]:
    spec = SplitSpec.derive(_TRACK, "track_base", "album", "album",
                            s_attrs=("artist",))
    r_rows, s_rows, _, _ = split(spec, [dict(r) for r in _TRACK_ROWS])
    return {"track_base": r_rows, "album": s_rows}


def _expected_emp_chain() -> Dict[str, Rows]:
    foj_spec = FojSpec.derive(_EMP, _DEPT, "emp_dept", "dept_id", "did")
    t_rows = full_outer_join(
        foj_spec, [dict(r) for r in _EMP_ROWS], [dict(r) for r in _DEPT_ROWS])
    split_spec = SplitSpec.derive(foj_spec.target_schema(), "staff",
                                  "dept_info", "dept_id",
                                  s_attrs=("dname", "floor"))
    r_rows, s_rows, _, _ = split(split_spec, t_rows)
    return {"staff": r_rows, "dept_info": s_rows}


def _expected_doc_tags() -> Dict[str, Rows]:
    spec = ExplodeSpec.derive(_DOC, "doc_tag", "tags", "tag")
    return {"doc_tag": explode(spec, [dict(r) for r in _DOC_ROWS])}


def _expected_orders_partition() -> Dict[str, Rows]:
    spec = PartitionSpec("orders", "orders_eu", "orders_intl",
                         predicate=AttrPredicate("region", "==", "eu"))
    a_rows, b_rows = partition_rows(spec, [dict(r) for r in _ORDERS_ROWS])
    return {"orders_eu": a_rows, "orders_intl": b_rows}


def _expected_evt_merge() -> Dict[str, Rows]:
    return {"evt": merge_rows([dict(r) for r in _EVT_A_ROWS],
                              [dict(r) for r in _EVT_B_ROWS],
                              lambda values: (values["eid"],))}


def _expected_reading_retype() -> Dict[str, Rows]:
    spec = RetypeSpec.derive(_READING, "reading_v2", "value",
                             cast="int", default=0)
    return {"reading_v2": retype(spec, [dict(r) for r in _READING_ROWS])}


# -- the corpus ---------------------------------------------------------------

CORPUS: Tuple[CorpusScenario, ...] = (
    CorpusScenario(
        name="denormalize-foj",
        challenge="inline an association: denormalize two tables into one",
        seeds=((_BOOK, _BOOK_ROWS), (_PUB, _PUB_ROWS)),
        plan=MigrationPlan.single(
            "corpus.denormalize-foj", "foj",
            {"r_name": "book", "s_name": "pub", "target_name": "book_pub",
             "join_attr_r": "pub_id", "join_attr_s": "pid"},
            description="denormalize book/pub into one joined table"),
        expected=_expected_book_pub),
    CorpusScenario(
        name="normalize-split",
        challenge="normalize a denormalized table (extract a dependency)",
        seeds=((_TRACK, _TRACK_ROWS),),
        plan=MigrationPlan.single(
            "corpus.normalize-split", "split",
            {"source_name": "track", "r_name": "track_base",
             "s_name": "album", "split_attr": "album",
             "s_attrs": ["artist"]},
            description="extract album/artist out of the track table"),
        expected=_expected_track_split),
    CorpusScenario(
        name="chain-foj-split",
        challenge="a multi-step change: denormalize, then re-normalize "
                  "along a different functional dependency",
        seeds=((_EMP, _EMP_ROWS), (_DEPT, _DEPT_ROWS)),
        plan=MigrationPlan(
            plan_id="corpus.chain-foj-split",
            steps=(
                MigrationStep(
                    step_id="join", operator="foj",
                    params={"r_name": "emp", "s_name": "dept",
                            "target_name": "emp_dept",
                            "join_attr_r": "dept_id",
                            "join_attr_s": "did"}),
                MigrationStep(
                    step_id="split", operator="split",
                    params={"source_name": "emp_dept", "r_name": "staff",
                            "s_name": "dept_info",
                            "split_attr": "dept_id",
                            "s_attrs": ["dname", "floor"]}),
            ),
            description="join emp+dept, then split the result into "
                        "staff+dept_info"),
        expected=_expected_emp_chain),
    CorpusScenario(
        name="tags-explode",
        challenge="turn a scalar field into a collection "
                  "(one row per element)",
        seeds=((_DOC, _DOC_ROWS),),
        plan=MigrationPlan.single(
            "corpus.tags-explode", "explode",
            {"source_name": "doc", "target_name": "doc_tag",
             "list_attr": "tags", "value_attr": "tag"},
            description="explode the comma-joined tags column"),
        expected=_expected_doc_tags),
    CorpusScenario(
        name="archive-partition",
        challenge="partition rows by a predicate into hot/cold tables",
        seeds=((_ORDERS, _ORDERS_ROWS),),
        plan=MigrationPlan.single(
            "corpus.archive-partition", "partition",
            {"source_name": "orders", "a_name": "orders_eu",
             "b_name": "orders_intl",
             "predicate": {"attr": "region", "op": "==", "value": "eu"}},
            description="partition orders by region"),
        expected=_expected_orders_partition),
    CorpusScenario(
        name="reunify-merge",
        challenge="reunify a previously partitioned pair of tables",
        seeds=((_EVT_A, _EVT_A_ROWS), (_EVT_B, _EVT_B_ROWS)),
        plan=MigrationPlan.single(
            "corpus.reunify-merge", "merge",
            {"a_name": "evt_a", "b_name": "evt_b", "target_name": "evt"},
            description="merge the two event shards back into one table"),
        expected=_expected_evt_merge),
    CorpusScenario(
        name="retype-default",
        challenge="change a field's type and its NULL default",
        seeds=((_READING, _READING_ROWS),),
        plan=MigrationPlan.single(
            "corpus.retype-default", "retype",
            {"source_name": "reading", "target_name": "reading_v2",
             "attr": "value", "cast": "int", "default": 0},
            description="retype reading.value from string to int, "
                        "NULLs become 0"),
        expected=_expected_reading_retype),
)

CORPUS_BY_NAME: Dict[str, CorpusScenario] = {s.name: s for s in CORPUS}


def get_scenario(name: str) -> CorpusScenario:
    """Look up one corpus scenario, enumerating the corpus on a miss."""
    try:
        return CORPUS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown corpus scenario {name!r}; available: "
                       f"{sorted(CORPUS_BY_NAME)}") from None
