"""Declarative migration plans: validated chains of schema changes.

A :class:`MigrationPlan` is the data half of the plan API: an ordered
list of :class:`MigrationStep` entries, each naming one relational
operator from the plan registry (:data:`repro.plan.operators.PLAN_OPERATORS`
-- ``foj``, ``foj_m2m``, ``split``, ``explode``, ``partition``,
``merge``, ``retype``), its operator-specific parameters (source/target
tables, attribute mappings) and optional per-step
:class:`~repro.transform.options.TransformOptions` overrides.  Plans are
plain data: :meth:`MigrationPlan.to_dict` / :meth:`from_dict` round-trip
through JSON-able dictionaries, so a plan can live in a config file, a
ticket, or a test fixture.

Nothing here touches a database.  Semantic validation (do the tables and
attributes exist, are the operator/option combinations legal) is the
:class:`repro.plan.validate.PlanValidator`'s job, and execution is the
:class:`repro.plan.executor.PlanExecutor`'s; this module only enforces
*structural* shape, so malformed documents fail at decode time with a
:class:`~repro.common.errors.PlanValidationError` naming every problem.

Option overrides are stored as plain dicts (not
:class:`~repro.transform.options.TransformOptions` instances) and are
restricted to the JSON-codable option fields
(:data:`PLAN_OPTION_FIELDS`): the executor merges plan-wide ``defaults``
under each step's ``options`` and constructs the real options object --
with the step's deterministic transform id -- at execution time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import PlanValidationError

#: The TransformOptions fields a plan may set, per step or plan-wide.
#: Deliberately the JSON-codable subset: attachments (``metrics``,
#: ``faults``), policy objects, flush policies and ``transform_id`` (the
#: executor derives it from plan id + step id) are excluded.
PLAN_OPTION_FIELDS: Tuple[str, ...] = (
    "sync", "shards", "population_chunk", "propagation_batch",
    "priority", "population_mode", "storage",
)


def _require(mapping: Dict[str, object], key: str, where: str,
             problems: List[str]) -> object:
    if key not in mapping:
        problems.append(f"{where}: missing required field {key!r}")
        return None
    return mapping[key]


@dataclass(frozen=True)
class MigrationStep:
    """One operator application inside a plan.

    Attributes:
        step_id: Plan-unique identifier; the executor derives the step's
            transform id as ``"<plan_id>.<step_id>"``, which is what the
            WAL's swap records carry and what crash resume keys on.
        operator: Registry name of the relational operator
            (see :data:`repro.plan.operators.PLAN_OPERATORS`).
        params: Operator-specific parameters: source/target table names,
            attribute mappings, predicates -- everything the operator's
            ``Spec.derive`` needs beyond the live schemas.
        options: Per-step option overrides (a dict over
            :data:`PLAN_OPTION_FIELDS`), merged over the plan's
            ``defaults`` by the executor.
    """

    step_id: str
    operator: str
    params: Dict[str, object] = field(default_factory=dict)
    options: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "step_id": self.step_id,
            "operator": self.operator,
            "params": dict(self.params),
        }
        if self.options:
            out["options"] = dict(self.options)
        return out


@dataclass(frozen=True)
class MigrationPlan:
    """A validated, executable chain of schema transformations.

    Attributes:
        plan_id: Stable identifier; prefixes every step's transform id.
        steps: The ordered operator applications.
        defaults: Plan-wide option overrides (same shape and field
            restrictions as a step's ``options``; each step's dict wins
            on conflicts).
        description: Free-text intent, carried into run reports.
    """

    plan_id: str
    steps: Tuple[MigrationStep, ...]
    defaults: Dict[str, object] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    # -- convenience -----------------------------------------------------

    @classmethod
    def single(cls, plan_id: str, operator: str,
               params: Dict[str, object],
               options: Optional[Dict[str, object]] = None,
               description: str = "") -> "MigrationPlan":
        """A one-step plan: how single-operator calls enter the plan API."""
        return cls(plan_id=plan_id,
                   steps=(MigrationStep(step_id=operator, operator=operator,
                                        params=dict(params),
                                        options=dict(options or {})),),
                   description=description)

    def step_ids(self) -> List[str]:
        return [step.step_id for step in self.steps]

    def transform_id(self, step: Union[MigrationStep, str]) -> str:
        """The deterministic transform id of one step.

        Deterministic matters: it is the join key between a plan step and
        the :class:`~repro.wal.records.TransformSwapRecord` it leaves in
        the WAL, which is how resume-after-crash decides which steps are
        already done.
        """
        step_id = step if isinstance(step, str) else step.step_id
        return f"{self.plan_id}.{step_id}"

    # -- codec -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form; inverse of :meth:`from_dict`."""
        out: Dict[str, object] = {
            "plan_id": self.plan_id,
            "steps": [step.to_dict() for step in self.steps],
        }
        if self.defaults:
            out["defaults"] = dict(self.defaults)
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "MigrationPlan":
        """Decode a plan document, rejecting malformed shapes eagerly.

        Raises :class:`~repro.common.errors.PlanValidationError` listing
        *every* structural problem (semantic checks -- table existence,
        operator registry, option legality -- are the validator's).
        """
        problems: List[str] = []
        if not isinstance(doc, dict):
            raise PlanValidationError(
                "<unknown>", [f"plan document must be a dict, "
                              f"got {type(doc).__name__}"])
        plan_id = _require(doc, "plan_id", "plan", problems)
        if plan_id is not None and (not isinstance(plan_id, str)
                                    or not plan_id):
            problems.append(f"plan: plan_id must be a non-empty string, "
                            f"got {plan_id!r}")
        raw_steps = _require(doc, "steps", "plan", problems)
        steps: List[MigrationStep] = []
        if raw_steps is not None:
            if not isinstance(raw_steps, list) or not raw_steps:
                problems.append("plan: steps must be a non-empty list")
                raw_steps = []
            for i, raw in enumerate(raw_steps):
                where = f"steps[{i}]"
                if not isinstance(raw, dict):
                    problems.append(f"{where}: must be a dict, "
                                    f"got {type(raw).__name__}")
                    continue
                unknown = sorted(set(raw) - {"step_id", "operator",
                                             "params", "options"})
                if unknown:
                    problems.append(
                        f"{where}: unknown field(s) {unknown}; available: "
                        "['operator', 'options', 'params', 'step_id']")
                step_id = _require(raw, "step_id", where, problems)
                operator = _require(raw, "operator", where, problems)
                for name, value in (("step_id", step_id),
                                    ("operator", operator)):
                    if value is not None and (not isinstance(value, str)
                                              or not value):
                        problems.append(
                            f"{where}: {name} must be a non-empty string, "
                            f"got {value!r}")
                for name in ("params", "options"):
                    if not isinstance(raw.get(name, {}), dict):
                        problems.append(
                            f"{where}: {name} must be a dict, got "
                            f"{type(raw[name]).__name__}")
                if not problems:
                    steps.append(MigrationStep(
                        step_id=str(step_id), operator=str(operator),
                        params=dict(raw.get("params") or {}),
                        options=dict(raw.get("options") or {})))
        defaults = doc.get("defaults", {})
        if not isinstance(defaults, dict):
            problems.append(f"plan: defaults must be a dict, "
                            f"got {type(defaults).__name__}")
            defaults = {}
        description = doc.get("description", "")
        if not isinstance(description, str):
            problems.append(f"plan: description must be a string, "
                            f"got {type(description).__name__}")
            description = ""
        if problems:
            raise PlanValidationError(
                plan_id if isinstance(plan_id, str) else "<unknown>",
                problems)
        return cls(plan_id=str(plan_id), steps=tuple(steps),
                   defaults=dict(defaults), description=description)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON rendering; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MigrationPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanValidationError(
                "<unknown>", [f"plan document is not valid JSON: {exc}"])
        return cls.from_dict(doc)
