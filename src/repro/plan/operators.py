"""The operator registry behind the declarative migration plan API.

Each entry of :data:`PLAN_OPERATORS` adapts one relational transformation
to the plan machinery with two callables:

* ``derive(schemas, params)`` -- given a *simulated catalog* (a mapping
  of table name to :class:`~repro.storage.schema.TableSchema`) and the
  step's params, return ``(published, retired)``: the schemas the step
  publishes and the source tables it retires.  It raises
  :class:`~repro.common.errors.SchemaError` on dangling table or
  attribute references.  The validator threads the simulated catalog
  through a plan's steps (``schemas - retired + published``), which is
  how a step may legally reference a table *created by an earlier step*
  that does not exist in the live database yet.
* ``build(db, params, options)`` -- construct the concrete
  :class:`~repro.transform.base.Transformation` against the live
  database.  Called by the executor at the start of each supervisor
  attempt, so a retried step re-derives its spec from the then-current
  catalog.

The registry is data the validator iterates over: ``required`` /
``optional`` param names yield key-enumerating errors for missing or
unknown params, and ``supports_lazy`` lets ``population_mode="lazy"`` on
an eager-only operator (e.g. the many-to-many join) fail at validation
time rather than deep inside ``Transformation._begin_population``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.common.errors import SchemaError
from repro.engine.database import Database
from repro.relational.spec import ExplodeSpec, FojSpec, RetypeSpec, SplitSpec
from repro.storage.schema import TableSchema
from repro.transform.base import Transformation
from repro.transform.explode import ExplodeTransformation
from repro.transform.foj import FojTransformation
from repro.transform.foj_m2m import Many2ManyFojTransformation
from repro.transform.options import TransformOptions
from repro.transform.partition import (
    AttrPredicate,
    MergeSpec,
    MergeTransformation,
    PartitionSpec,
    PartitionTransformation,
)
from repro.transform.retype import RetypeTransformation
from repro.transform.split import SplitTransformation

Schemas = Dict[str, TableSchema]
Derived = Tuple[Dict[str, TableSchema], Tuple[str, ...]]


@dataclass(frozen=True)
class PlanOperator:
    """One relational operator as seen by the plan machinery.

    Attributes:
        name: Registry key, the ``operator`` string of a plan step.
        supports_lazy: Whether the operator's rule engine can serve
            migrate-on-read (``population_mode="lazy"``).
        required: Param names every step using this operator must set.
        optional: Param names a step may set.
        derive: Schema-level dry run; see the module docstring.
        build: Live transformation factory; see the module docstring.
    """

    name: str
    supports_lazy: bool
    required: Tuple[str, ...]
    optional: Tuple[str, ...]
    derive: Callable[[Schemas, Dict[str, object]], Derived]
    build: Callable[[Database, Dict[str, object], TransformOptions],
                    Transformation]

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(self.required) + tuple(self.optional)


def _schema_of(schemas: Schemas, name: object) -> TableSchema:
    """Look up one table in the simulated catalog, enumerating on miss."""
    if name not in schemas:
        raise SchemaError(
            f"unknown table {name!r}; available: {sorted(schemas)}")
    return schemas[name]


def _predicate_of(params: Dict[str, object]) -> AttrPredicate:
    """Decode a partition step's ``predicate`` param into an AttrPredicate.

    Plans are JSON documents, so the predicate arrives as a dict --
    ``{"attr": ..., "op": ..., "value": ...}`` -- never as a callable.
    """
    raw = params["predicate"]
    if isinstance(raw, AttrPredicate):
        return raw
    if not isinstance(raw, dict):
        raise SchemaError(
            f"predicate must be a dict with keys 'attr', 'op' and "
            f"optionally 'value', got {type(raw).__name__}")
    unknown = sorted(set(raw) - {"attr", "op", "value"})
    if unknown:
        raise SchemaError(
            f"unknown predicate field(s) {unknown}; available: "
            "['attr', 'op', 'value']")
    missing = sorted({"attr", "op"} - set(raw))
    if missing:
        raise SchemaError(f"predicate is missing field(s) {missing}")
    return AttrPredicate(attr=raw["attr"], op=raw["op"],
                         value=raw.get("value"))


# -- full outer join ----------------------------------------------------------


def _foj_spec(schemas: Schemas, params: Dict[str, object],
              many_to_many: bool) -> FojSpec:
    r_schema = _schema_of(schemas, params["r_name"])
    s_schema = _schema_of(schemas, params["s_name"])
    return FojSpec.derive(
        r_schema, s_schema, params["target_name"],
        params["join_attr_r"], params["join_attr_s"],
        r_attrs=params.get("r_attrs"), s_attrs=params.get("s_attrs"),
        many_to_many=many_to_many)


def _derive_foj(schemas: Schemas, params: Dict[str, object]) -> Derived:
    spec = _foj_spec(schemas, params, many_to_many=False)
    return ({spec.target_name: spec.target_schema()},
            (spec.r_name, spec.s_name))


def _build_foj(db: Database, params: Dict[str, object],
               options: TransformOptions) -> Transformation:
    schemas = {n: db.catalog.get(n).schema for n in db.catalog.table_names()}
    spec = _foj_spec(schemas, params, many_to_many=False)
    return FojTransformation(db, spec, options=options)


def _derive_foj_m2m(schemas: Schemas, params: Dict[str, object]) -> Derived:
    spec = _foj_spec(schemas, params, many_to_many=True)
    return ({spec.target_name: spec.target_schema()},
            (spec.r_name, spec.s_name))


def _build_foj_m2m(db: Database, params: Dict[str, object],
                   options: TransformOptions) -> Transformation:
    schemas = {n: db.catalog.get(n).schema for n in db.catalog.table_names()}
    spec = _foj_spec(schemas, params, many_to_many=True)
    return Many2ManyFojTransformation(db, spec, options=options)


# -- vertical split -----------------------------------------------------------


def _split_spec(schemas: Schemas, params: Dict[str, object]) -> SplitSpec:
    t_schema = _schema_of(schemas, params["source_name"])
    return SplitSpec.derive(
        t_schema, params["r_name"], params["s_name"],
        params["split_attr"], params["s_attrs"],
        r_attrs=params.get("r_attrs"))


def _derive_split(schemas: Schemas, params: Dict[str, object]) -> Derived:
    spec = _split_spec(schemas, params)
    return ({spec.r_name: spec.r_schema(), spec.s_name: spec.s_schema()},
            (spec.source_name,))


def _build_split(db: Database, params: Dict[str, object],
                 options: TransformOptions) -> Transformation:
    schemas = {n: db.catalog.get(n).schema for n in db.catalog.table_names()}
    spec = _split_spec(schemas, params)
    return SplitTransformation(
        db, spec,
        check_consistency=bool(params.get("check_consistency", False)),
        on_inconsistent=params.get("on_inconsistent", "raise"),
        materialize_r=bool(params.get("materialize_r", True)),
        options=options)


# -- multi-value explode ------------------------------------------------------


def _explode_spec(schemas: Schemas,
                  params: Dict[str, object]) -> ExplodeSpec:
    source_schema = _schema_of(schemas, params["source_name"])
    return ExplodeSpec.derive(
        source_schema, params["target_name"],
        params["list_attr"], params["value_attr"],
        keep_attrs=params.get("keep_attrs"),
        separator=params.get("separator", ","))


def _derive_explode(schemas: Schemas, params: Dict[str, object]) -> Derived:
    spec = _explode_spec(schemas, params)
    return {spec.target_name: spec.target_schema()}, (spec.source_name,)


def _build_explode(db: Database, params: Dict[str, object],
                   options: TransformOptions) -> Transformation:
    schemas = {n: db.catalog.get(n).schema for n in db.catalog.table_names()}
    spec = _explode_spec(schemas, params)
    return ExplodeTransformation(db, spec, options=options)


# -- horizontal partition / merge --------------------------------------------


def _derive_partition(schemas: Schemas,
                      params: Dict[str, object]) -> Derived:
    source_schema = _schema_of(schemas, params["source_name"])
    predicate = _predicate_of(params)
    if not source_schema.has_attribute(predicate.attr):
        raise SchemaError(
            f"predicate references unknown attribute {predicate.attr!r}; "
            f"available: {sorted(source_schema.attribute_names)}")
    return ({params["a_name"]: source_schema.rename(params["a_name"]),
             params["b_name"]: source_schema.rename(params["b_name"])},
            (source_schema.name,))


def _build_partition(db: Database, params: Dict[str, object],
                     options: TransformOptions) -> Transformation:
    spec = PartitionSpec(
        source_name=params["source_name"], a_name=params["a_name"],
        b_name=params["b_name"], predicate=_predicate_of(params))
    return PartitionTransformation(db, spec, options=options)


def _derive_merge(schemas: Schemas, params: Dict[str, object]) -> Derived:
    a_schema = _schema_of(schemas, params["a_name"])
    b_schema = _schema_of(schemas, params["b_name"])
    if a_schema.attribute_names != b_schema.attribute_names or \
            a_schema.primary_key != b_schema.primary_key:
        raise SchemaError(
            f"{params['a_name']!r} and {params['b_name']!r} are not "
            "union-compatible")
    target = params["target_name"]
    return ({target: a_schema.rename(target)},
            (a_schema.name, b_schema.name))


def _build_merge(db: Database, params: Dict[str, object],
                 options: TransformOptions) -> Transformation:
    spec = MergeSpec(a_name=params["a_name"], b_name=params["b_name"],
                     target_name=params["target_name"])
    return MergeTransformation(db, spec, options=options)


# -- column retype ------------------------------------------------------------


def _retype_spec(schemas: Schemas, params: Dict[str, object]) -> RetypeSpec:
    source_schema = _schema_of(schemas, params["source_name"])
    return RetypeSpec.derive(
        source_schema, params["target_name"], params["attr"],
        cast=params.get("cast", "str"), default=params.get("default"))


def _derive_retype(schemas: Schemas, params: Dict[str, object]) -> Derived:
    source_schema = _schema_of(schemas, params["source_name"])
    spec = _retype_spec(schemas, params)
    return ({spec.target_name: spec.target_schema(source_schema)},
            (spec.source_name,))


def _build_retype(db: Database, params: Dict[str, object],
                  options: TransformOptions) -> Transformation:
    schemas = {n: db.catalog.get(n).schema for n in db.catalog.table_names()}
    spec = _retype_spec(schemas, params)
    return RetypeTransformation(db, spec, options=options)


PLAN_OPERATORS: Dict[str, PlanOperator] = {op.name: op for op in (
    PlanOperator(
        name="foj", supports_lazy=True,
        required=("r_name", "s_name", "target_name",
                  "join_attr_r", "join_attr_s"),
        optional=("r_attrs", "s_attrs"),
        derive=_derive_foj, build=_build_foj),
    PlanOperator(
        name="foj_m2m", supports_lazy=False,
        required=("r_name", "s_name", "target_name",
                  "join_attr_r", "join_attr_s"),
        optional=("r_attrs", "s_attrs"),
        derive=_derive_foj_m2m, build=_build_foj_m2m),
    PlanOperator(
        name="split", supports_lazy=True,
        required=("source_name", "r_name", "s_name", "split_attr",
                  "s_attrs"),
        optional=("r_attrs", "check_consistency", "on_inconsistent",
                  "materialize_r"),
        derive=_derive_split, build=_build_split),
    PlanOperator(
        name="explode", supports_lazy=True,
        required=("source_name", "target_name", "list_attr", "value_attr"),
        optional=("keep_attrs", "separator"),
        derive=_derive_explode, build=_build_explode),
    PlanOperator(
        name="partition", supports_lazy=False,
        required=("source_name", "a_name", "b_name", "predicate"),
        optional=(),
        derive=_derive_partition, build=_build_partition),
    PlanOperator(
        name="merge", supports_lazy=False,
        required=("a_name", "b_name", "target_name"),
        optional=(),
        derive=_derive_merge, build=_build_merge),
    PlanOperator(
        name="retype", supports_lazy=True,
        required=("source_name", "target_name", "attr"),
        optional=("cast", "default"),
        derive=_derive_retype, build=_build_retype),
)}
