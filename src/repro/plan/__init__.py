"""The declarative migration-plan API.

A :class:`MigrationPlan` describes a chain of online schema changes as
plain data (operator names, table/attribute mappings, per-step option
overrides) with a JSON round trip; :class:`PlanValidator` rejects
ill-formed plans eagerly, before any table is created; and
:func:`run_plan` / :class:`PlanExecutor` compile a validated plan into
supervised, crash-resumable transformations.  See
``docs/api.md`` for a worked example and :mod:`repro.plan.corpus` for
the challenge-problem scenario corpus.
"""

from repro.common.errors import PlanValidationError
from repro.plan.corpus import CORPUS, CORPUS_BY_NAME, CorpusScenario, \
    get_scenario
from repro.plan.executor import PlanExecutor, PlanStepper, run_plan
from repro.plan.operators import PLAN_OPERATORS, PlanOperator
from repro.plan.spec import PLAN_OPTION_FIELDS, MigrationPlan, MigrationStep
from repro.plan.validate import PlanValidator

__all__ = [
    "CORPUS",
    "CORPUS_BY_NAME",
    "CorpusScenario",
    "MigrationPlan",
    "MigrationStep",
    "PLAN_OPERATORS",
    "PLAN_OPTION_FIELDS",
    "PlanExecutor",
    "PlanOperator",
    "PlanStepper",
    "PlanValidationError",
    "PlanValidator",
    "get_scenario",
    "run_plan",
]
