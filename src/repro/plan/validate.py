"""Eager validation of migration plans against a live catalog.

:class:`PlanValidator` rejects an ill-formed :class:`MigrationPlan`
*before* any table is created or populated.  It collects every problem
it can find -- not just the first -- into one
:class:`~repro.common.errors.PlanValidationError`, so a plan author
fixes a broken document in one round trip:

* duplicate or empty step ids;
* unknown operators (with the registry enumerated);
* missing, unknown, or ill-typed operator params;
* option keys outside :data:`~repro.plan.spec.PLAN_OPTION_FIELDS`, and
  option *values* :class:`~repro.transform.options.TransformOptions`
  itself rejects (unknown sync strategy, ``version_flip`` without the
  MVCC backend, bad shard counts, ...);
* ``population_mode="lazy"`` on an eager-only operator (e.g. the
  many-to-many join);
* dangling table or attribute references, checked by walking a
  *simulated catalog*: starting from the live schemas, each step's
  ``derive`` consumes its retired sources and publishes its targets, so
  step 2 of a chain may reference step 1's output, and a step that
  re-publishes an existing table name is caught here rather than at
  swap time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.errors import PlanValidationError, SchemaError
from repro.engine.database import Database
from repro.plan.operators import PLAN_OPERATORS
from repro.plan.spec import PLAN_OPTION_FIELDS, MigrationPlan, MigrationStep
from repro.storage.schema import TableSchema
from repro.transform.options import TransformOptions


class PlanValidator:
    """Validates a :class:`MigrationPlan` against one database's catalog."""

    def __init__(self, db: Database) -> None:
        self.db = db

    # -- public entry points ---------------------------------------------

    def validate(self, plan: MigrationPlan,
                 completed_step_ids: Iterable[str] = ()) -> None:
        """Raise :class:`PlanValidationError` unless the plan is runnable.

        ``completed_step_ids`` supports crash resume: steps already
        swapped into the catalog are checked structurally (ids, operator,
        params, options) but skipped by the catalog walk -- their sources
        are already retired from the live catalog, so replaying their
        ``derive`` against it would produce spurious dangling-reference
        errors.  The walk resumes from the live catalog at the first
        incomplete step.
        """
        problems = self.problems(plan, completed_step_ids)
        if problems:
            raise PlanValidationError(plan.plan_id, problems)

    def problems(self, plan: MigrationPlan,
                 completed_step_ids: Iterable[str] = ()) -> List[str]:
        """All problems found, empty when the plan is runnable."""
        completed = set(completed_step_ids)
        problems: List[str] = []
        if not plan.plan_id:
            problems.append("plan: plan_id must be a non-empty string")
        if not plan.steps:
            problems.append("plan: steps must be a non-empty list")
        self._check_option_dict(plan.defaults, "plan defaults", problems)

        seen_ids: set = set()
        schemas: Optional[Dict[str, TableSchema]] = {
            name: self.db.catalog.get_any(name).schema
            for name in self.db.catalog.table_names()}
        for step in plan.steps:
            where = f"step {step.step_id!r}"
            if not step.step_id:
                problems.append("plan: step ids must be non-empty strings")
            elif step.step_id in seen_ids:
                problems.append(f"plan: duplicate step id {step.step_id!r}")
            seen_ids.add(step.step_id)

            op = PLAN_OPERATORS.get(step.operator)
            if op is None:
                problems.append(
                    f"{where}: unknown operator {step.operator!r}; "
                    f"available: {sorted(PLAN_OPERATORS)}")
                schemas = None  # can't walk past an unknown operator
                continue

            missing = sorted(set(op.required) - set(step.params))
            if missing:
                problems.append(
                    f"{where}: operator {op.name!r} is missing required "
                    f"param(s) {missing}")
            unknown = sorted(set(step.params) - set(op.param_names))
            if unknown:
                problems.append(
                    f"{where}: unknown param(s) {unknown} for operator "
                    f"{op.name!r}; available: {sorted(op.param_names)}")

            options = self._check_options(plan, step, where, problems)
            if options is not None and options.population_mode == "lazy" \
                    and not op.supports_lazy:
                problems.append(
                    f"{where}: population_mode='lazy' is not supported by "
                    f"operator {op.name!r} (its rule engine is eager-only); "
                    "lazy-capable operators: "
                    f"{sorted(n for n, o in PLAN_OPERATORS.items() if o.supports_lazy)}")

            if missing or unknown or schemas is None:
                schemas = None  # params unusable: stop the catalog walk
                continue
            if step.step_id in completed:
                continue  # sources already retired from the live catalog
            try:
                published, retired = op.derive(schemas, step.params)
            except SchemaError as exc:
                problems.append(f"{where}: {exc}")
                schemas = None
                continue
            collisions = sorted(
                name for name in published
                if name in schemas and name not in retired)
            if collisions:
                problems.append(
                    f"{where}: published table name(s) {collisions} "
                    "collide with existing tables")
            schemas = {name: schema for name, schema in schemas.items()
                       if name not in retired}
            schemas.update(published)
        return problems

    # -- helpers ----------------------------------------------------------

    def _check_option_dict(self, options: Dict[str, object], where: str,
                           problems: List[str]) -> bool:
        """Key-level checks shared by plan defaults and step options."""
        if not isinstance(options, dict):
            problems.append(
                f"{where}: options must be a dict, got "
                f"{type(options).__name__}")
            return False
        unknown = sorted(set(options) - set(PLAN_OPTION_FIELDS))
        if unknown:
            problems.append(
                f"{where}: unknown option(s) {unknown}; available: "
                f"{sorted(PLAN_OPTION_FIELDS)}")
            return False
        return True

    def _check_options(self, plan: MigrationPlan, step: MigrationStep,
                       where: str, problems: List[str]
                       ) -> Optional[TransformOptions]:
        """Build the step's effective options, recording any errors.

        Mirrors the executor's merge exactly (plan defaults under step
        overrides) so anything :class:`TransformOptions` would reject at
        execution time -- an unknown sync strategy, ``version_flip``
        without ``storage="mvcc"`` -- is caught here instead.
        """
        if not self._check_option_dict(step.options, where, problems):
            return None
        if not isinstance(plan.defaults, dict):
            return None
        merged = {**plan.defaults, **step.options}
        merged = {k: v for k, v in merged.items() if k in PLAN_OPTION_FIELDS}
        try:
            return TransformOptions(**merged)
        except (ValueError, TypeError) as exc:
            problems.append(f"{where}: invalid options: {exc}")
            return None
