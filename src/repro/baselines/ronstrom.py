"""Ronström-style trigger-based transformation (paper Section 2.1).

Ronström [23] performs online schema changes with a *reorganizer* scan
plus **triggers inside user transactions**: "triggers make sure that
updates to the old tables are executed immediately to the transformed
table.  When the scan is complete, the old and transformed tables are
consistent due to the triggered updates."

The paper argues its log-based method is preferable because the trigger
work lands inside user transactions (inflating their response time, and
requiring cross-node waits in a distributed DBMS), whereas log propagation
runs as a decoupled low-priority background process.  This module
implements the trigger-based approach so the benchmarks can measure that
difference.

Implementation notes:

* the triggers reuse the paper's own propagation rule engines as
  *immediate* incremental-maintenance operators -- applied exactly once,
  synchronously, they are ordinary view-maintenance updates;
* the reorganizer scans the source tables chunk by chunk under short
  shared locks (a fresh transaction per chunk), feeding each row through
  the same engine as a synthetic insert, which is idempotent against rows
  the triggers already produced;
* completion needs no log propagation: once the scan finishes, the targets
  are consistent, and a brief latch swaps the schema.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import TransformationStateError
from repro.engine.database import Database
from repro.relational.spec import FojSpec, SplitSpec
from repro.storage.table import Table
from repro.transform.base import Phase, StepReport
from repro.transform.foj import FojRuleEngine, create_foj_target
from repro.transform.split import SplitRuleEngine, create_split_targets
from repro.wal.records import (
    FuzzyMarkRecord,
    InsertRecord,
    LogRecord,
    TransformSwapRecord,
)

_counter = itertools.count(1)


class RonstromTransformation:
    """Trigger-based online FOJ or split transformation.

    Args:
        db: The database.
        spec: A :class:`FojSpec` or :class:`SplitSpec`.
        chunk: Rows the reorganizer copies per scan transaction.
    """

    def __init__(self, db: Database, spec: Union[FojSpec, SplitSpec],
                 chunk: int = 64) -> None:
        self.db = db
        self.spec = spec
        self.chunk = chunk
        self.is_split = isinstance(spec, SplitSpec)
        self.transform_id = f"ronstrom-{next(_counter)}"
        self.phase = Phase.CREATED
        self.targets: Dict[str, Table] = {}
        self.engine = None
        self._scan_plan: List[Tuple[str, List[int]]] = []
        self._scan_table = 0
        self._scan_pos = 0
        #: Number of trigger invocations executed inside user transactions.
        self.trigger_ops = 0

    @property
    def source_tables(self) -> Tuple[str, ...]:
        """Names of the tables being transformed away."""
        if self.is_split:
            return (self.spec.source_name,)
        return (self.spec.r_name, self.spec.s_name)

    @property
    def done(self) -> bool:
        """Whether the transformation completed."""
        return self.phase is Phase.DONE

    # -- driving ---------------------------------------------------------------

    def run(self) -> None:
        """Drive to completion (single-threaded use)."""
        while not self.done:
            self.step(1 << 20)

    def step(self, budget: int = 256) -> StepReport:
        """Advance the reorganizer by up to ``budget`` scanned rows."""
        budget = max(1, int(budget))
        if self.phase is Phase.DONE:
            return StepReport(self.phase, 0, True)
        if self.phase is Phase.CREATED:
            self._prepare()
            return StepReport(self.phase, 1, False)
        if self.phase is Phase.POPULATING:
            units = self._scan_step(budget)
            if self._scan_done():
                self._swap()
                return StepReport(self.phase, max(units, 1), True)
            return StepReport(self.phase, max(units, 1), False)
        raise TransformationStateError(f"unexpected phase {self.phase}")

    # -- preparation: targets + triggers ---------------------------------------------

    def _prepare(self) -> None:
        if self.is_split:
            self.targets = create_split_targets(self.db, self.spec)
            self.engine = SplitRuleEngine(
                self.db, self.spec,
                self.targets[self.spec.r_name],
                self.targets[self.spec.s_name],
                transform_id=self.transform_id)
        else:
            table = create_foj_target(self.db, self.spec)
            self.targets = {self.spec.target_name: table}
            self.engine = FojRuleEngine(self.db, self.spec, table)
        for name in self.source_tables:
            self.db.create_trigger(name, self._trigger)
        self._scan_plan = [
            (name, list(self.db.catalog.get(name).rows))
            for name in self.source_tables
        ]
        self.phase = Phase.POPULATING

    def _trigger(self, db: Database, txn, record: LogRecord) -> None:
        """Executed inside the user transaction, right after its operation.

        This is precisely the cost the paper's method avoids: the
        maintenance work is charged to the user transaction's response
        time (the simulator bills it through ``db.stats['trigger']``).
        """
        self.trigger_ops += 1
        self.engine.apply(record, record.lsn)

    # -- the reorganizer scan --------------------------------------------------------

    def _scan_step(self, budget: int) -> int:
        """Copy up to ``budget`` rows under short shared locks.

        A row locked by a user transaction makes the scan transaction
        back off (abort, releasing its queued request) and retry the row
        on a later step -- the reorganizer must never deadlock with or
        stall user work.
        """
        from repro.common.errors import DeadlockError, LockWaitError
        units = 0
        while units < budget and not self._scan_done():
            name, rowids = self._scan_plan[self._scan_table]
            if self._scan_pos >= len(rowids):
                self._scan_table += 1
                self._scan_pos = 0
                continue
            table = self.db.catalog.get(name)
            take = min(self.chunk, budget - units,
                       len(rowids) - self._scan_pos)
            chunk = rowids[self._scan_pos:self._scan_pos + take]
            txn = self.db.begin()
            scanned = 0
            blocked = False
            for rowid in chunk:
                row = table.rows.get(rowid)
                if row is None:
                    scanned += 1
                    continue  # deleted since the plan was made
                key = table.schema.key_of(row.values)
                try:
                    values = self.db.read(txn, name, key)
                except (LockWaitError, DeadlockError):
                    blocked = True
                    break
                scanned += 1
                if values is None:
                    continue
                synthetic = InsertRecord(txn_id=txn.txn_id, table=name,
                                         key=key, values=values)
                synthetic.lsn = row.lsn
                self.engine.apply(synthetic, row.lsn)
                units += 1
            if blocked:
                self.db.abort(txn)  # withdraws the queued lock request
                self._scan_pos += scanned
                return max(units, 1)
            self.db.commit(txn)
            self._scan_pos += scanned
        return units

    def _scan_done(self) -> bool:
        if self._scan_table >= len(self._scan_plan):
            return True
        name, rowids = self._scan_plan[self._scan_table]
        return self._scan_table == len(self._scan_plan) - 1 and \
            self._scan_pos >= len(rowids)

    # -- completion ---------------------------------------------------------------------

    def _swap(self) -> None:
        for name in self.source_tables:
            self.db.drop_triggers(name)
        latched = []
        for name in self.source_tables:
            table = self.db.catalog.get(name)
            self.db.locks.latch_table(table.uid, self.transform_id)
            latched.append(table)
        self.db.log.append(TransformSwapRecord(
            transform_id=self.transform_id,
            transform_kind="split" if self.is_split else "foj",
            retired=tuple(self.source_tables),
            published={name: t.schema for name, t in self.targets.items()},
            params={"spec": self.spec},
        ))
        self.db.catalog.swap(self.source_tables, dict(self.targets),
                             keep_zombies=False)
        for table in latched:
            self.db.unlatch_table(table, self.transform_id)
        self.db.log.append(FuzzyMarkRecord(transform_id=self.transform_id,
                                           phase="end"))
        self.phase = Phase.DONE
