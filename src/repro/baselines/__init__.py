"""Comparison baselines: blocking insert-into-select and trigger-based."""

from repro.baselines.blocking import BlockingTransformation
from repro.baselines.ronstrom import RonstromTransformation

__all__ = [
    "BlockingTransformation",
    "RonstromTransformation",
]
