"""The blocking ``INSERT INTO ... SELECT`` baseline (paper Section 1).

"A schema transformation can easily be made if the involved tables can be
locked while the transformation is performed.  Most databases can do this
by issuing an insert into select command...  For tables with large amounts
of data, the insert into select method could easily take tens of minutes
or more."

This baseline locks the source tables for the *entire* copy: it latches
them, reads a consistent snapshot, applies the operator, swaps, and
unlatches.  Every concurrent transaction touching the sources stalls for
the duration -- the blocked time the benchmarks compare against the online
method's sub-millisecond synchronization latch.

The class exposes the same ``step(budget)`` / ``done`` driving interface
as :class:`repro.transform.base.Transformation`, so the simulator can run
it as the background process and measure exactly how long user
transactions stay blocked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import TransformationStateError
from repro.engine.database import Database
from repro.relational.spec import FojSpec, SplitSpec
from repro.storage.table import Table
from repro.transform.base import Phase, StepReport
from repro.transform.foj import (
    add_foj_indexes,
    populate_foj_target,
)
from repro.transform.split import (
    create_split_targets,
    upsert_split_row,
)
from repro.wal.records import FuzzyMarkRecord, TransformSwapRecord


class BlockingTransformation:
    """Offline (blocking) FOJ or split transformation.

    Args:
        db: The database.
        spec: A :class:`FojSpec` or :class:`SplitSpec`.
        chunk: Rows copied per work unit batch (granularity of
            :meth:`step`; the tables stay latched across steps regardless
            -- that is the point of this baseline).
    """

    def __init__(self, db: Database, spec: Union[FojSpec, SplitSpec],
                 chunk: int = 256) -> None:
        self.db = db
        self.spec = spec
        self.chunk = chunk
        self.is_split = isinstance(spec, SplitSpec)
        self.transform_id = "blocking-" + (
            spec.source_name if self.is_split else spec.target_name)
        self.phase = Phase.CREATED
        self.targets: Dict[str, Table] = {}
        self._rows: List = []
        self._pos = 0
        self._s_rows: List = []
        #: Units spent while the sources were latched (= all of them).
        self.blocked_units = 0

    @property
    def source_tables(self) -> Tuple[str, ...]:
        """Names of the tables being transformed away."""
        if self.is_split:
            return (self.spec.source_name,)
        return (self.spec.r_name, self.spec.s_name)

    @property
    def done(self) -> bool:
        """Whether the transformation completed."""
        return self.phase is Phase.DONE

    # -- driving ------------------------------------------------------------

    def run(self) -> None:
        """Drive to completion (single-threaded use)."""
        while not self.done:
            self.step(1 << 20)

    def step(self, budget: int = 256) -> StepReport:
        """Perform up to ``budget`` copy units; sources stay latched."""
        budget = max(1, int(budget))
        if self.phase is Phase.DONE:
            return StepReport(self.phase, 0, True)
        if self.phase is Phase.CREATED:
            self._prepare_and_latch()
            return StepReport(self.phase, 1, False)
        if self.phase is Phase.POPULATING:
            units = self._copy_step(budget)
            self.blocked_units += units
            if self._pos >= len(self._rows):
                self._swap_and_release()
                return StepReport(self.phase, max(units, 1), True)
            return StepReport(self.phase, max(units, 1), False)
        raise TransformationStateError(f"unexpected phase {self.phase}")

    # -- internals -------------------------------------------------------------

    def _prepare_and_latch(self) -> None:
        if self.is_split:
            self.targets = create_split_targets(self.db, self.spec)
        else:
            table = self.db.create_table(self.spec.target_schema(),
                                         transient=True)
            add_foj_indexes(table, self.spec)
            self.targets = {self.spec.target_name: table}
        for name in self.source_tables:
            table = self.db.catalog.get(name)
            self.db.locks.latch_table(table.uid, self.transform_id)
        # With the sources latched, the snapshot is trivially consistent.
        if self.is_split:
            source = self.db.catalog.get(self.spec.source_name)
            self._rows = [(dict(r.values), r.lsn) for r in source.scan()]
        else:
            r_table = self.db.catalog.get(self.spec.r_name)
            s_table = self.db.catalog.get(self.spec.s_name)
            self._rows = [dict(r.values) for r in r_table.scan()]
            self._s_rows = [dict(r.values) for r in s_table.scan()]
        self.blocked_units += 1
        self.phase = Phase.POPULATING

    def _copy_step(self, budget: int) -> int:
        take = min(budget, len(self._rows) - self._pos)
        if take <= 0:
            return 0
        if self.is_split:
            r_table = self.targets[self.spec.r_name]
            s_table = self.targets[self.spec.s_name]
            for values, lsn in self._rows[self._pos:self._pos + take]:
                upsert_split_row(r_table, s_table, self.spec, values, lsn)
        else:
            # The FOJ is computed in one go on the last chunk: the copy
            # cost dominates and the tables are latched either way.
            if self._pos + take >= len(self._rows):
                populate_foj_target(self.targets[self.spec.target_name],
                                    self.spec, self._rows, self._s_rows)
        self._pos += take
        return take

    def _swap_and_release(self) -> None:
        self.db.log.append(TransformSwapRecord(
            transform_id=self.transform_id,
            transform_kind="split" if self.is_split else "foj",
            retired=tuple(self.source_tables),
            published={name: t.schema for name, t in self.targets.items()},
            params={"spec": self.spec},
        ))
        self.db.catalog.swap(self.source_tables, dict(self.targets),
                             keep_zombies=False)
        self._unlatch_all()
        self.db.log.append(FuzzyMarkRecord(transform_id=self.transform_id,
                                           phase="end"))
        self.phase = Phase.DONE

    def _unlatch_all(self) -> None:
        # The source tables were dropped by the swap; wake their waiters.
        for name in self.source_tables:
            table = None
            if self.db.catalog.exists(name):
                table = self.db.catalog.get(name)
            if table is not None:
                self.db.unlatch_table(table, self.transform_id)
        # Dropped tables: their latch entries are keyed by uid; wake any
        # waiters registered there.
        for uid in list(self.db.locks._latches):
            if self.db.locks._latches.get(uid) == self.transform_id:
                woken = self.db.locks.unlatch_table(uid, self.transform_id)
                self.db._notify_woken(woken)
