"""The schema catalog: name -> table mapping plus visibility states.

Besides ordinary create/drop/rename, the catalog supports what the
synchronization step of the transformation framework needs (Section 3.4):

* **atomic swaps** -- in one step, source tables disappear under their
  public names and transformed tables appear under theirs;
* **zombie tables** -- with the two *non-blocking* synchronization
  strategies, transactions that were active on the source tables keep
  running (until aborted, or to completion with non-blocking commit) after
  the swap.  Their tables are moved to a hidden *zombie* namespace that only
  those old transactions can still resolve;
* **blocked tables** -- the *blocking commit* strategy blocks new
  transactions from the involved tables while draining old ones;
* **versioned epochs** -- the MVCC version-flip strategy installs a
  schema change as a versioned catalog write: :meth:`Catalog.flip`
  snapshots the current name -> table mapping as a frozen *epoch*, then
  performs the swap and bumps :attr:`Catalog.version`.  A transaction
  whose snapshot pinned an older epoch keeps resolving names through
  :meth:`names_at` -- it reads the pre-flip schema until it finishes,
  with no latched window anywhere.  Epochs are reclaimed by MVCC GC once
  no pinned snapshot can still resolve through them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import (
    DuplicateTableError,
    NoSuchTableError,
    SchemaError,
)
from repro.faults import NULL_FAULTS
from repro.storage.schema import TableSchema
from repro.storage.table import Table


class Catalog:
    """All tables of a database, by name."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._zombies: Dict[str, Table] = {}
        self._blocked: Set[str] = set()
        #: Current schema version; bumped only by :meth:`flip`.
        self._version = 0
        #: Frozen name -> table mappings of superseded epochs, by the
        #: version number they were current under.
        self._epochs: Dict[int, Dict[str, Table]] = {}
        #: Fault injector stamped onto every table registered here.
        self.faults = NULL_FAULTS

    def attach_faults(self, faults) -> None:
        """Adopt ``faults`` and stamp it onto every known table."""
        self.faults = faults
        for table in list(self._tables.values()) \
                + list(self._zombies.values()):
            table.faults = faults

    # -- basic DDL -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table from ``schema`` and register it."""
        if schema.name in self._tables or schema.name in self._zombies:
            raise DuplicateTableError(schema.name)
        table = Table(schema)
        table.faults = self.faults
        self._tables[schema.name] = table
        return table

    def add_table(self, table: Table) -> None:
        """Register an already-built table object under its current name."""
        if table.name in self._tables or table.name in self._zombies:
            raise DuplicateTableError(table.name)
        table.faults = self.faults
        self._tables[table.name] = table

    def drop_table(self, name: str) -> Table:
        """Remove a table; returns the detached object."""
        table = self._tables.pop(name, None)
        if table is None:
            raise NoSuchTableError(name)
        self._blocked.discard(name)
        return table

    def rename_table(self, old: str, new: str) -> Table:
        """Rename a visible table."""
        if new in self._tables or new in self._zombies:
            raise DuplicateTableError(new)
        table = self.get(old)
        del self._tables[old]
        table.rename(new)
        self._tables[new] = table
        return table

    # -- lookup -------------------------------------------------------------------

    def get(self, name: str) -> Table:
        """Visible table by name."""
        table = self._tables.get(name)
        if table is None:
            raise NoSuchTableError(name)
        return table

    def get_any(self, name: str) -> Table:
        """Table by name, searching zombies too (old-transaction access)."""
        table = self._tables.get(name)
        if table is None:
            table = self._zombies.get(name)
        if table is None:
            raise NoSuchTableError(name)
        return table

    def exists(self, name: str) -> bool:
        """Whether a visible table with this name exists."""
        return name in self._tables

    def is_zombie(self, name: str) -> bool:
        """Whether this name refers to a zombie (post-swap source) table."""
        return name in self._zombies

    def table_names(self) -> List[str]:
        """Sorted names of all visible tables."""
        return sorted(self._tables)

    def zombie_names(self) -> List[str]:
        """Sorted names of all zombie tables."""
        return sorted(self._zombies)

    # -- blocking (blocking-commit synchronization) ----------------------------------

    def block(self, names: Iterable[str]) -> None:
        """Mark tables as blocked for *new* transactions."""
        for name in names:
            if name not in self._tables:
                raise NoSuchTableError(name)
            self._blocked.add(name)

    def unblock(self, names: Iterable[str]) -> None:
        """Lift the blocked mark."""
        for name in names:
            self._blocked.discard(name)

    def is_blocked(self, name: str) -> bool:
        """Whether the table currently rejects new transactions."""
        return name in self._blocked

    # -- transformation swap ------------------------------------------------------------

    def swap(self, retire: Iterable[str], publish: Dict[str, Table],
             keep_zombies: bool) -> None:
        """Atomically retire source tables and publish transformed ones.

        Args:
            retire: Names of the source tables to remove from the visible
                namespace.
            publish: Mapping of public name to (already populated)
                transformed table; each table is renamed to its public name.
            keep_zombies: If true, retired tables stay reachable through
                :meth:`get_any` for transactions that were already active on
                them (non-blocking strategies); if false they are dropped
                outright (blocking commit, where no such transaction exists).
        """
        retire_list = list(retire)
        for name in retire_list:
            if name not in self._tables:
                raise NoSuchTableError(name)
        for public, table in publish.items():
            existing = self._tables.get(public)
            if existing is not None and existing is not table \
                    and public not in retire_list:
                raise DuplicateTableError(public)
        for name in retire_list:
            table = self._tables.pop(name)
            self._blocked.discard(name)
            if keep_zombies:
                self._zombies[name] = table
        for public, table in publish.items():
            if table.name != public:
                # The table was built under an internal working name;
                # publish it under its public one.
                self._tables.pop(table.name, None)
                table.rename(public)
            self._tables[public] = table

    def drop_zombie(self, name: str) -> None:
        """Discard a zombie table once no old transaction can touch it."""
        self._zombies.pop(name, None)

    # -- versioned epochs (MVCC version flip) --------------------------------

    @property
    def version(self) -> int:
        """The current schema version (0 until the first flip)."""
        return self._version

    def flip(self, retire: Iterable[str], publish: Dict[str, Table],
             keep_zombies: bool = True) -> int:
        """Install a schema change as a versioned catalog write.

        Freezes the current visible mapping as the epoch for
        :attr:`version`, performs the same atomic retire/publish as
        :meth:`swap`, then bumps the version.  New transactions resolve
        names through the bumped mapping; transactions pinned at the old
        version keep resolving through the frozen epoch (the retired
        table objects stay alive there even after their zombies are
        dropped).  Returns the new version.
        """
        published = {id(t) for t in publish.values()}
        # The frozen epoch is the pre-flip *user* schema: transient target
        # tables already registered under their working (or public) names
        # are excluded, so a reader pinned before the flip can never
        # resolve the new schema -- not even its half-built precursor.
        self._epochs[self._version] = {
            name: t for name, t in self._tables.items()
            if id(t) not in published}
        self.swap(retire, publish, keep_zombies)
        self._version += 1
        return self._version

    def names_at(self, version: int) -> Optional[Dict[str, Table]]:
        """The frozen name -> table mapping of a superseded epoch.

        ``None`` for the current version (resolve normally) and for
        epochs already reclaimed by :meth:`trim_epochs`.
        """
        if version >= self._version:
            return None
        return self._epochs.get(version)

    def trim_epochs(self, oldest_pinned: Optional[int]) -> int:
        """Reclaim epochs no pinned snapshot can still resolve through.

        ``oldest_pinned=None`` means nothing is pinned: every frozen
        epoch goes.  Returns the number of epochs dropped.
        """
        if oldest_pinned is None:
            dropped = len(self._epochs)
            self._epochs.clear()
            return dropped
        stale = [v for v in self._epochs if v < oldest_pinned]
        for v in stale:
            del self._epochs[v]
        return len(stale)

    def __repr__(self) -> str:
        names = ", ".join(self.table_names())
        zombies = ", ".join(self.zombie_names())
        extra = f" zombies=[{zombies}]" if zombies else ""
        return f"Catalog([{names}]{extra})"
