"""Multi-version storage: committed version chains + pinned snapshots.

The 2006 paper buys online schema change with latches: fuzzy population
reads *dirty* (lock-ignoring) images and the synchronization closes over
a latched window.  "Online Schema Evolution is (Almost) Free for
Snapshot Databases" (VLDB 2023) observes that under multi-versioned
storage neither is necessary -- a reader pins a snapshot LSN and
resolves every row *as of* that LSN, and the schema change itself is
just one more versioned write that flips atomically.

This module is the storage half of that design:

* :class:`VersionedTable` -- a version-chain overlay for one heap
  :class:`~repro.storage.table.Table`.  Each primary key owns a chain of
  ``(lsn, values)`` entries ordered by LSN: the oldest entry is the
  *seed* (the committed image observed the first time a transaction
  wrote the key, stamped with the heap row's data LSN), later entries
  are transaction **final images stamped with their commit LSN**.  A
  deletion is a :data:`TOMBSTONE` entry.  Chains hold committed state
  only; per-transaction pending images live in :class:`MvccManager`
  until commit.
* :class:`SnapshotHandle` -- pins a read LSN (and the catalog epoch
  current at pin time, see :class:`~repro.storage.catalog.Catalog`).
  Active pins hold back version GC and catalog-epoch reclamation.
* :class:`SnapshotScan` -- the snapshot replacement for
  :class:`~repro.engine.fuzzy.FuzzyScan`: same ``next_chunk`` /
  ``exhausted`` / ``remaining`` surface, but every row is resolved as of
  the pinned LSN, so the populate phase reads a transaction-consistent
  image without ever touching the lock manager.  (Like the fuzzy scan it
  is still *repaired* by log propagation -- the seed images make the
  scan no worse than the committed state at the pin.)
* :class:`MvccManager` -- the engine-facing facade: per-transaction
  pending images (stamped at commit with the commit record's LSN,
  discarded on abort), snapshot pin bookkeeping, the GC watermark
  (oldest pinned read LSN) and chain trimming below it.

Correctness leans on the engine's strict two-phase locking: a
transaction reaches ``note_write`` only while holding the X lock, so the
heap image it displaces is committed -- which is exactly what the chain
seed records.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults import NULL_FAULTS, register_site
from repro.obs.metrics import NULL_METRICS
from repro.storage.row import Row
from repro.storage.table import PRIMARY_INDEX, Table

SITE_MVCC_SNAPSHOT_READ = register_site(
    "mvcc.snapshot.read", "storage",
    "before a snapshot scan resolves one chunk of rows as of its pinned "
    "read LSN during MVCC population")
SITE_MVCC_FLIP = register_site(
    "mvcc.flip", "sync",
    "before the versioned catalog write that atomically flips the "
    "visible schema version (no latched window)")
SITE_MVCC_GC = register_site(
    "mvcc.gc", "storage",
    "before superseded row versions below the oldest pinned snapshot "
    "are reclaimed")


class _Tombstone:
    """Sentinel version value marking a deletion in a chain."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "TOMBSTONE"


#: Chain entry value recording that the key was deleted at that LSN.
TOMBSTONE = _Tombstone()


class SnapshotHandle:
    """A pinned read timestamp: all reads resolve as of ``read_lsn``.

    Handles also pin the catalog epoch that was current when the
    snapshot was taken (``catalog_version``), so a transaction that
    began before a version flip keeps resolving table names through the
    pre-flip schema.  Pins hold back garbage collection until released.
    """

    __slots__ = ("read_lsn", "catalog_version", "owner", "_manager",
                 "released")

    def __init__(self, read_lsn: int, catalog_version: int,
                 owner: str = "", manager: "MvccManager" = None) -> None:
        self.read_lsn = int(read_lsn)
        self.catalog_version = int(catalog_version)
        self.owner = owner
        self._manager = manager
        self.released = False

    def release(self) -> None:
        """Unpin; idempotent.  Released handles no longer hold back GC."""
        if not self.released and self._manager is not None:
            self._manager.release(self)
        self.released = True

    def __repr__(self) -> str:  # pragma: no cover - repr only
        state = "released" if self.released else "pinned"
        return (f"SnapshotHandle(read_lsn={self.read_lsn}, "
                f"catalog_version={self.catalog_version}, "
                f"owner={self.owner!r}, {state})")


class VersionedTable:
    """Committed version chains for one heap table.

    The overlay never replaces the heap -- the latch-based design and
    all physical redo/undo keep operating on the :class:`Table`
    unchanged.  The chains only *remember* superseded committed images
    so snapshot readers can resolve rows as of an earlier LSN.
    """

    __slots__ = ("table", "_chains")

    def __init__(self, table: Table) -> None:
        self.table = table
        #: primary key -> [(lsn, values-dict or TOMBSTONE), ...] ascending.
        self._chains: Dict[Tuple, List[Tuple[int, object]]] = {}

    # -- writes -----------------------------------------------------------

    def seed(self, key: Tuple, values: Dict[str, object],
             lsn: int) -> None:
        """Record the committed image a first write is about to displace.

        No-op if the key already has a chain (the displaced image is
        then already the chain head).  ``lsn`` is the heap row's data
        LSN -- the newest logged operation reflected in ``values``.
        """
        if key not in self._chains:
            self._chains[key] = [(max(0, int(lsn)), dict(values))]

    def stamp(self, key: Tuple, commit_lsn: int, values: object) -> None:
        """Append a transaction's final image for ``key`` at its commit LSN.

        ``values`` is either an attribute dict or :data:`TOMBSTONE`.
        Chains stay LSN-ordered because commit LSNs are monotone and
        strict 2PL serializes writers per key.
        """
        chain = self._chains.setdefault(key, [])
        if chain and chain[-1][0] >= commit_lsn:
            # Same-LSN restamp (idempotent replay): replace, don't grow.
            chain[-1] = (commit_lsn, values)
        else:
            chain.append((commit_lsn, values))
        primary = self.table.indexes.get(PRIMARY_INDEX)
        if primary is not None:
            # The heap write that produced this version may have taken
            # the indexed-attrs-disjoint fast path, which skips all
            # index bookkeeping -- bump the probe-cache version stamp so
            # a cached probe can never serve the superseded version.
            primary.note_version_change(key)

    def forget(self, key: Tuple) -> None:
        """Drop the whole chain for ``key`` (testing/GC helper)."""
        self._chains.pop(key, None)

    # -- reads ------------------------------------------------------------

    def read_as_of(self, key: Tuple, read_lsn: int) -> Optional[object]:
        """Values visible at ``read_lsn``: a dict, TOMBSTONE, or None.

        ``None`` means the chain has no version at or below the LSN
        (never written since versioning started) -- the caller falls
        back to the live heap row.
        """
        chain = self._chains.get(key)
        if not chain:
            return None
        visible = None
        for lsn, values in chain:
            if lsn > read_lsn:
                break
            visible = (lsn, values)
        return visible

    def chain_of(self, key: Tuple) -> List[Tuple[int, object]]:
        """The raw chain (read-only use; tests and GC accounting)."""
        return list(self._chains.get(key, ()))

    def version_count(self) -> int:
        """Total chain entries across all keys."""
        return sum(len(chain) for chain in self._chains.values())

    # -- GC ---------------------------------------------------------------

    def trim(self, watermark: Optional[int]) -> int:
        """Reclaim versions no pinned snapshot can still read.

        Keeps, per chain, the newest entry at or below ``watermark``
        (it is still visible to a snapshot pinned exactly there) plus
        everything above.  ``watermark=None`` means no snapshot is
        pinned: only the newest entry survives, and a chain whose sole
        survivor is a tombstone is dropped entirely.  Returns the number
        of entries reclaimed.
        """
        reclaimed = 0
        dead_keys = []
        primary = self.table.indexes.get(PRIMARY_INDEX)
        for key, chain in self._chains.items():
            if watermark is None:
                keep_from = len(chain) - 1
            else:
                keep_from = 0
                for i, (lsn, _) in enumerate(chain):
                    if lsn <= watermark:
                        keep_from = i
                    else:
                        break
            if keep_from > 0:
                del chain[:keep_from]
                reclaimed += keep_from
                if primary is not None:
                    primary.note_version_change(key)
            if watermark is None and len(chain) == 1 \
                    and chain[0][1] is TOMBSTONE:
                dead_keys.append(key)
        for key in dead_keys:
            reclaimed += len(self._chains.pop(key))
            if primary is not None:
                primary.note_version_change(key)
        return reclaimed


class SnapshotScan:
    """Drop-in ``FuzzyScan`` replacement resolving rows as of a pin.

    Materializes the rowid set at construction (exactly like the fuzzy
    scan, so population cost accounting is unchanged) and resolves each
    row through the version chains at ``handle.read_lsn``.  Rows whose
    visible version is a tombstone -- or that have no version at the
    pin -- are skipped.  Never consults the lock manager.
    """

    def __init__(self, versioned: VersionedTable, handle: SnapshotHandle,
                 chunk_size: int = 256,
                 rowids: Optional[List[int]] = None,
                 faults=None) -> None:
        self.versioned = versioned
        self.table = versioned.table
        self.handle = handle
        self.chunk_size = max(1, int(chunk_size))
        self.faults = faults if faults is not None else NULL_FAULTS
        table = versioned.table
        ids = list(table.rows) if rowids is None else list(rowids)
        #: (rowid, primary key) pairs frozen at construction; the key is
        #: remembered so a row deleted mid-scan can still be resolved
        #: through its chain.
        self._pending: List[Tuple[int, Tuple]] = []
        for rowid in ids:
            row = table.rows.get(rowid)
            if row is None:
                continue
            self._pending.append(
                (rowid, table.schema.key_of(row.values)))
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        """Whether every materialized rowid has been resolved."""
        return self._pos >= len(self._pending)

    @property
    def remaining(self) -> int:
        """Rowids not yet visited."""
        return len(self._pending) - self._pos

    def next_chunk(self, limit: Optional[int] = None) -> List[Row]:
        """Resolve the next chunk as of the pinned read LSN."""
        if self.exhausted:
            return []
        count = self.chunk_size if limit is None \
            else max(0, min(self.chunk_size, int(limit)))
        if count == 0:
            return []
        self.faults.fire(SITE_MVCC_SNAPSHOT_READ, table=self.table.name,
                         read_lsn=self.handle.read_lsn,
                         remaining=self.remaining)
        chunk: List[Row] = []
        read_lsn = self.handle.read_lsn
        while self._pos < len(self._pending) and len(chunk) < count:
            rowid, key = self._pending[self._pos]
            self._pos += 1
            live = self.table.rows.get(rowid)
            version = self.versioned.read_as_of(key, read_lsn)
            if version is None:
                # Never versioned: the live row is the committed image.
                if live is not None:
                    chunk.append(live.snapshot())
                continue
            lsn, values = version
            if values is TOMBSTONE:
                continue
            snap = Row.__new__(Row)
            snap.rowid = rowid
            snap.values = dict(values)
            snap.lsn = lsn
            snap.meta = dict(live.meta) if live is not None else {}
            chunk.append(snap)
        return chunk

    def __iter__(self) -> Iterator[List[Row]]:
        while not self.exhausted:
            chunk = self.next_chunk()
            if chunk:
                yield chunk


class MvccManager:
    """Engine-facing MVCC state: pins, pending images, stamping, GC.

    Owned by a :class:`~repro.engine.database.Database` once
    ``enable_mvcc()`` is called (``TransformOptions(storage="mvcc")``
    does this when the transformation is constructed).  All
    per-transaction state is keyed by ``txn_id`` here --
    :class:`~repro.concurrency.transactions.Transaction` is slotted and
    stays lean.
    """

    def __init__(self, db) -> None:
        self.db = db
        self.faults = db.faults
        self.metrics = db.metrics if db.metrics is not None else NULL_METRICS
        #: table uid -> overlay (created on first write/scan).
        self._versioned: Dict[int, VersionedTable] = {}
        #: txn_id -> {(table uid, key): final values or TOMBSTONE}.
        self._pending: Dict[int, Dict[Tuple[int, Tuple], object]] = {}
        #: live pins, by id(handle).
        self._pins: Dict[int, SnapshotHandle] = {}
        #: txn ids allowed to keep writing pre-flip tables after a flip
        #: (the in-flight transactions whose locks the flip materialized).
        self.write_through: set = set()
        self.stats = {"stamped": 0, "reclaimed": 0, "gc_runs": 0}

    # -- overlays ---------------------------------------------------------

    def versioned(self, table: Table) -> VersionedTable:
        """The (lazily created) version overlay for ``table``."""
        overlay = self._versioned.get(table.uid)
        if overlay is None:
            overlay = self._versioned[table.uid] = VersionedTable(table)
        return overlay

    # -- snapshot pins ----------------------------------------------------

    def pin(self, owner: str = "") -> SnapshotHandle:
        """Pin a snapshot at the current end of log + catalog epoch."""
        handle = SnapshotHandle(self.db.log.end_lsn,
                                self.db.catalog.version,
                                owner=owner, manager=self)
        self._pins[id(handle)] = handle
        self.metrics.set_gauge("mvcc.snapshots.pinned", len(self._pins))
        return handle

    def release(self, handle: SnapshotHandle) -> None:
        """Drop a pin; the GC watermark may advance."""
        self._pins.pop(id(handle), None)
        handle.released = True
        self.metrics.set_gauge("mvcc.snapshots.pinned", len(self._pins))

    def watermark(self) -> Optional[int]:
        """Oldest pinned read LSN, or ``None`` when nothing is pinned."""
        if not self._pins:
            return None
        return min(h.read_lsn for h in self._pins.values())

    def oldest_pinned_epoch(self) -> Optional[int]:
        """Oldest pinned catalog version, or ``None`` without pins."""
        if not self._pins:
            return None
        return min(h.catalog_version for h in self._pins.values())

    # -- transaction lifecycle -------------------------------------------

    def on_begin(self, txn) -> SnapshotHandle:
        """Pin the transaction's snapshot (stored on ``txn.snapshot``)."""
        handle = self.pin(owner=f"txn:{txn.txn_id}")
        txn.snapshot = handle
        return handle

    def note_write(self, txn, table: Table,
                   before: Optional[Dict[str, object]],
                   after: object, before_lsn: int = 0) -> None:
        """Record one engine write: seed the chain, buffer the image.

        Called *after* the physical apply, while the writer still holds
        its X lock -- so ``before`` (captured pre-apply) is committed
        state and safe to seed.  ``after`` is the new attribute dict, or
        :data:`TOMBSTONE` for a delete.
        """
        overlay = self.versioned(table)
        schema = table.schema
        pending = self._pending.setdefault(txn.txn_id, {})
        before_key = None if before is None else schema.key_of(before)
        after_key = None if after is TOMBSTONE \
            else schema.key_of(after)
        if before is not None:
            overlay.seed(before_key, before, before_lsn)
        if before_key is not None and after_key is not None \
                and before_key != after_key:
            # Primary-key change: delete at the old key, birth at the new.
            pending[(table.uid, before_key)] = TOMBSTONE
            pending[(table.uid, after_key)] = dict(after)
            return
        key = after_key if after_key is not None else before_key
        if key is None:
            return
        pending[(table.uid, key)] = TOMBSTONE if after is TOMBSTONE \
            else dict(after)

    def on_commit(self, txn, commit_lsn: int) -> None:
        """Stamp the transaction's final images at its commit LSN."""
        pending = self._pending.pop(txn.txn_id, None)
        if pending:
            for (uid, key), values in pending.items():
                overlay = self._versioned.get(uid)
                if overlay is not None:
                    overlay.stamp(key, commit_lsn, values)
            self.stats["stamped"] += len(pending)
            self.metrics.inc("mvcc.versions.stamped", len(pending))
        self.write_through.discard(txn.txn_id)
        self._release_txn(txn)

    def on_abort(self, txn) -> None:
        """Discard pending images (physical rollback restores the heap)."""
        self._pending.pop(txn.txn_id, None)
        self.write_through.discard(txn.txn_id)
        self._release_txn(txn)

    def _release_txn(self, txn) -> None:
        handle = getattr(txn, "snapshot", None)
        if handle is not None:
            self.release(handle)
            txn.snapshot = None

    # -- pinned-epoch name resolution ------------------------------------

    def names_for(self, txn) -> Optional[Dict[str, Table]]:
        """The catalog mapping a pinned transaction resolves through.

        ``None`` when the transaction reads the current epoch (no pin,
        or pinned at the current version) -- callers then use the normal
        resolution path.
        """
        handle = getattr(txn, "snapshot", None)
        if handle is None or handle.released:
            return None
        if handle.catalog_version >= self.db.catalog.version:
            return None
        return self.db.catalog.names_at(handle.catalog_version)

    # -- garbage collection ----------------------------------------------

    def gc(self) -> int:
        """Reclaim superseded versions below the oldest pinned snapshot.

        Also releases catalog epochs no pin can still resolve through.
        Returns the number of chain entries reclaimed and updates the
        ``mvcc.gc.*`` watermark/reclaimed metrics.
        """
        self.faults.fire(SITE_MVCC_GC, pins=len(self._pins))
        watermark = self.watermark()
        reclaimed = 0
        for overlay in self._versioned.values():
            reclaimed += overlay.trim(watermark)
        self.db.catalog.trim_epochs(self.oldest_pinned_epoch())
        self.stats["gc_runs"] += 1
        self.stats["reclaimed"] += reclaimed
        self.metrics.set_gauge(
            "mvcc.gc.watermark",
            float(watermark if watermark is not None
                  else self.db.log.end_lsn))
        if reclaimed:
            self.metrics.inc("mvcc.gc.reclaimed", reclaimed)
        self.metrics.set_gauge("mvcc.versions.live", float(
            sum(v.version_count() for v in self._versioned.values())))
        return reclaimed
