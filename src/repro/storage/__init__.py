"""Storage layer: schemas, rows, hash indexes, heap tables, the catalog
and the MVCC version-chain overlay."""

from repro.storage.catalog import Catalog
from repro.storage.index import HashIndex, index_key
from repro.storage.mvcc import (
    MvccManager,
    SnapshotHandle,
    SnapshotScan,
    TOMBSTONE,
    VersionedTable,
)
from repro.storage.row import Row
from repro.storage.schema import Attribute, FunctionalDependency, TableSchema
from repro.storage.table import PRIMARY_INDEX, Table

__all__ = [
    "Attribute",
    "Catalog",
    "FunctionalDependency",
    "HashIndex",
    "MvccManager",
    "PRIMARY_INDEX",
    "Row",
    "SnapshotHandle",
    "SnapshotScan",
    "TOMBSTONE",
    "Table",
    "TableSchema",
    "VersionedTable",
    "index_key",
]
