"""Storage layer: schemas, rows, hash indexes, heap tables and the catalog."""

from repro.storage.catalog import Catalog
from repro.storage.index import HashIndex, index_key
from repro.storage.row import Row
from repro.storage.schema import Attribute, FunctionalDependency, TableSchema
from repro.storage.table import PRIMARY_INDEX, Table

__all__ = [
    "Attribute",
    "Catalog",
    "FunctionalDependency",
    "HashIndex",
    "PRIMARY_INDEX",
    "Row",
    "Table",
    "TableSchema",
    "index_key",
]
