"""Table schemas: attributes, primary/candidate keys, functional dependencies.

A schema is a value object, independent of any stored data.  The
transformation framework derives target-table schemas from source schemas
(projection plus shared join/split attributes), so helper methods for
projecting and merging schemas live here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A single column definition.

    Attributes:
        name: Column name, unique within the table.
        nullable: Whether ``None`` is a legal stored value.  Transformed
            tables produced by a full outer join must keep the non-join
            attributes nullable, because NULL-record joins (the paper's
            ``rnull`` / ``snull``) store NULL in the missing side.
    """

    name: str
    nullable: bool = True


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``determinants -> dependents``.

    Declared on a source table of a split transformation, it documents the
    consistency assumption of Section 5: rows agreeing on ``determinants``
    should agree on ``dependents``.  The consistency checker uses declared
    FDs to explain which dependency a U-flagged record violates.
    """

    determinants: Tuple[str, ...]
    dependents: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{','.join(self.determinants)} -> {','.join(self.dependents)}"


class TableSchema:
    """Immutable description of a table: columns and keys.

    Args:
        name: Table name.
        attributes: Column definitions; plain strings are promoted to
            nullable :class:`Attribute` objects.
        primary_key: Names of the primary-key columns (must be a subset of
            the attributes).  Primary-key columns are implicitly NOT NULL
            for user tables; transformed tables may carry rows with a NULL
            key part (the FOJ NULL-records), which the storage layer treats
            as falling outside the unique primary index.
        candidate_keys: Additional unique column sets.
        functional_deps: Declared functional dependencies (for split).
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[object],
        primary_key: Sequence[str],
        candidate_keys: Sequence[Sequence[str]] = (),
        functional_deps: Sequence[FunctionalDependency] = (),
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        attrs: List[Attribute] = []
        for item in attributes:
            if isinstance(item, Attribute):
                attrs.append(item)
            elif isinstance(item, str):
                attrs.append(Attribute(item))
            else:
                raise SchemaError(f"bad attribute spec: {item!r}")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {name!r}: {names}")
        if not attrs:
            raise SchemaError(f"table {name!r} needs at least one attribute")
        pk = tuple(primary_key)
        if not pk:
            raise SchemaError(f"table {name!r} needs a primary key")
        missing = [c for c in pk if c not in names]
        if missing:
            raise SchemaError(f"primary key columns {missing} not in {name!r}")
        cks: List[Tuple[str, ...]] = []
        for ck in candidate_keys:
            ck_t = tuple(ck)
            bad = [c for c in ck_t if c not in names]
            if bad:
                raise SchemaError(f"candidate key columns {bad} not in {name!r}")
            cks.append(ck_t)
        for fd in functional_deps:
            for col in (*fd.determinants, *fd.dependents):
                if col not in names:
                    raise SchemaError(f"FD column {col!r} not in {name!r}")

        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attrs)
        self.attribute_names: Tuple[str, ...] = tuple(names)
        self.primary_key: Tuple[str, ...] = pk
        self.candidate_keys: Tuple[Tuple[str, ...], ...] = tuple(cks)
        self.functional_deps: Tuple[FunctionalDependency, ...] = tuple(
            functional_deps
        )
        self._attr_set = frozenset(names)
        self._pk_set = frozenset(pk)

    # -- introspection -------------------------------------------------------

    def has_attribute(self, name: str) -> bool:
        """Whether a column with the given name exists."""
        return name in self._attr_set

    def is_key_attribute(self, name: str) -> bool:
        """Whether the column is part of the primary key."""
        return name in self._pk_set

    def non_key_attributes(self) -> Tuple[str, ...]:
        """Column names that are not part of the primary key, in order."""
        return tuple(n for n in self.attribute_names if n not in self._pk_set)

    # -- row helpers ---------------------------------------------------------

    def key_of(self, values: Mapping[str, object]) -> Tuple:
        """Extract the primary-key tuple from a values mapping."""
        return tuple(values[c] for c in self.primary_key)

    def normalize(self, values: Mapping[str, object]) -> Dict[str, object]:
        """Validate and complete a row image.

        Unknown columns raise; missing columns are filled with ``None``.
        Returns a fresh dict ordered like the schema.
        """
        extra = set(values) - self._attr_set
        if extra:
            raise SchemaError(
                f"unknown attributes {sorted(extra)} for table {self.name!r}"
            )
        return {n: values.get(n) for n in self.attribute_names}

    def validate_changes(self, changes: Mapping[str, object]) -> None:
        """Validate an update's changed-attribute mapping.

        Primary-key columns may not be updated in place (the engine requires
        delete + insert, matching the paper's propagation rules which assume
        stable identifying attributes).
        """
        extra = set(changes) - self._attr_set
        if extra:
            raise SchemaError(
                f"unknown attributes {sorted(extra)} for table {self.name!r}"
            )
        touched_key = set(changes) & self._pk_set
        if touched_key:
            raise SchemaError(
                f"primary key columns {sorted(touched_key)} of {self.name!r} "
                "cannot be updated in place; delete and re-insert instead"
            )

    # -- derivation (used by the transformation framework) --------------------

    def project(self, name: str, columns: Sequence[str],
                primary_key: Sequence[str]) -> "TableSchema":
        """Schema of a projection of this table under a new name."""
        missing = [c for c in columns if c not in self._attr_set]
        if missing:
            raise SchemaError(f"cannot project missing columns {missing}")
        by_name = {a.name: a for a in self.attributes}
        return TableSchema(
            name,
            [by_name[c] for c in columns],
            primary_key,
        )

    @staticmethod
    def merge(name: str, left: "TableSchema", right: "TableSchema",
              primary_key: Sequence[str],
              shared: Iterable[str] = ()) -> "TableSchema":
        """Schema of a join of two tables (columns of both, shared once).

        Non-key columns become nullable, since outer-join NULL records store
        NULL on the missing side.
        """
        shared_set = set(shared)
        columns: List[Attribute] = [
            Attribute(a.name, nullable=True) for a in left.attributes
        ]
        have = {a.name for a in columns}
        for a in right.attributes:
            if a.name in shared_set:
                if a.name not in have:
                    raise SchemaError(
                        f"shared column {a.name!r} missing from {left.name!r}"
                    )
                continue
            if a.name in have:
                raise SchemaError(
                    f"column {a.name!r} exists in both {left.name!r} and "
                    f"{right.name!r}; rename before transforming"
                )
            columns.append(Attribute(a.name, nullable=True))
            have.add(a.name)
        return TableSchema(name, columns, primary_key)

    def rename(self, name: str) -> "TableSchema":
        """Copy of this schema under another table name."""
        return TableSchema(
            name,
            self.attributes,
            self.primary_key,
            self.candidate_keys,
            self.functional_deps,
        )

    def __repr__(self) -> str:
        cols = ", ".join(self.attribute_names)
        return f"TableSchema({self.name!r}: {cols}; pk={self.primary_key})"
