"""Heap tables: rowid-addressed row storage with maintained hash indexes.

A table stores rows in a dict keyed by rowid (insertion-ordered, which gives
scans a stable physical order and lets rows inserted *during* a fuzzy scan
appear behind the cursor).  A unique primary index over the schema's
primary-key attributes is always maintained; secondary indexes can be added
at any time and are backfilled from existing rows.

All methods here are *physical*: no locking, no logging, no transaction
awareness.  The execution engine (:mod:`repro.engine.database`) layers
locking and WAL on top for user transactions; the transformation framework
calls these methods directly when redoing the log onto transformed tables,
because redo is not a user transaction (Section 3.3 of the paper).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import (
    DuplicateKeyError,
    NoSuchIndexError,
    NoSuchRowError,
    SchemaError,
)
from repro.faults import NULL_FAULTS, register_site
from repro.storage.index import HashIndex, index_key
from repro.storage.row import Row
from repro.storage.schema import TableSchema
from repro.wal.records import NULL_LSN

#: Name of the always-present unique index over the primary-key attributes.
PRIMARY_INDEX = "__primary__"

SITE_TABLE_INSERT = register_site(
    "table.insert", "storage", "before a row is stored in the heap")
SITE_TABLE_INSERT_INDEXED = register_site(
    "table.insert.indexed", "storage",
    "after the heap store, mid index maintenance")
SITE_TABLE_DELETE = register_site(
    "table.delete", "storage", "before a row leaves the heap and indexes")
SITE_TABLE_UPDATE = register_site(
    "table.update", "storage", "before a row image is changed in place")
SITE_INDEX_BACKFILL = register_site(
    "table.index.backfill", "storage",
    "before a new index is backfilled from existing rows")


class Table:
    """A stored table: schema + rows + indexes.

    Args:
        schema: The table's schema.  A unique primary index over
            ``schema.primary_key`` is created immediately.
    """

    _uid_counter = 0

    def __init__(self, schema: TableSchema) -> None:
        Table._uid_counter += 1
        #: Stable physical identity, independent of renames; lock-manager
        #: resources are keyed by uid so locks survive the catalog swap.
        self.uid: int = Table._uid_counter
        #: Fault injector (no-op singleton by default); the catalog stamps
        #: tables with the database's injector when one is attached.
        self.faults = NULL_FAULTS
        self.schema = schema
        self.rows: Dict[int, Row] = {}
        self.indexes: Dict[str, HashIndex] = {}
        self._primary = HashIndex(
            PRIMARY_INDEX, schema.primary_key, unique=True,
            table_name=schema.name,
        )
        self.indexes[PRIMARY_INDEX] = self._primary
        self._refresh_indexed_attrs()
        for i, ck in enumerate(schema.candidate_keys):
            self.create_index(f"__ck{i}__", ck, unique=True)

    # -- naming ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """Current table name (tracks catalog renames via the schema)."""
        return self.schema.name

    def rename(self, new_name: str) -> None:
        """Rename the table (schema object is replaced)."""
        self.schema = self.schema.rename(new_name)
        for index in self.indexes.values():
            index.table_name = new_name

    # -- index management -------------------------------------------------------

    def create_index(self, name: str, attrs: Sequence[str],
                     unique: bool = False) -> HashIndex:
        """Create and backfill a hash index over ``attrs``."""
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists on {self.name!r}")
        for attr in attrs:
            if not self.schema.has_attribute(attr):
                raise SchemaError(
                    f"cannot index missing attribute {attr!r} on {self.name!r}"
                )
        index = HashIndex(name, tuple(attrs), unique, table_name=self.name)
        self.faults.fire(SITE_INDEX_BACKFILL, table=self.name, index=name)
        for row in self.rows.values():
            index.insert(row.values, row.rowid)
        self.indexes[name] = index
        self._refresh_indexed_attrs()
        return index

    def drop_index(self, name: str) -> None:
        """Remove a secondary index."""
        if name == PRIMARY_INDEX:
            raise SchemaError("cannot drop the primary index")
        if name not in self.indexes:
            raise NoSuchIndexError(f"no index {name!r} on {self.name!r}")
        del self.indexes[name]
        self._refresh_indexed_attrs()

    def _refresh_indexed_attrs(self) -> None:
        """Recompute the set of attributes any index covers (the
        ``update_rowid`` fast path skips all index bookkeeping when the
        changed attributes are disjoint from it)."""
        self._indexed_attrs = frozenset(
            attr for index in self.indexes.values() for attr in index.attrs)

    def index(self, name: str) -> HashIndex:
        """Return an index by name."""
        try:
            return self.indexes[name]
        except KeyError:
            raise NoSuchIndexError(
                f"no index {name!r} on {self.name!r}"
            ) from None

    # -- physical row operations -----------------------------------------------

    def insert_row(self, values: Dict[str, object], lsn: int = NULL_LSN,
                   meta: Optional[Dict[str, object]] = None) -> Row:
        """Insert a new row; returns it.

        The values mapping is normalized against the schema (missing
        attributes become NULL).  Unique-index violations raise
        :class:`DuplicateKeyError` before any index is modified.
        """
        self.faults.fire(SITE_TABLE_INSERT, table=self.name)
        normalized = self.schema.normalize(values)
        row = Row(normalized, lsn=lsn, meta=meta)
        for index in self.indexes.values():
            if index.unique:
                key = index_key(normalized, index.attrs)
                if key is not None and index.contains(key):
                    raise DuplicateKeyError(self.name, key)
        self.rows[row.rowid] = row
        self.faults.fire(SITE_TABLE_INSERT_INDEXED, table=self.name,
                         rowid=row.rowid)
        for index in self.indexes.values():
            index.insert(row.values, row.rowid)
        return row

    def delete_rowid(self, rowid: int) -> Row:
        """Delete a row by physical id; returns the removed row."""
        self.faults.fire(SITE_TABLE_DELETE, table=self.name, rowid=rowid)
        row = self.rows.pop(rowid, None)
        if row is None:
            raise NoSuchRowError(self.name, (rowid,))
        for index in self.indexes.values():
            index.remove(row.values, row.rowid)
        return row

    def update_rowid(self, rowid: int, changes: Dict[str, object],
                     lsn: Optional[int] = None) -> Row:
        """Apply ``changes`` to a row in place, re-indexing as needed.

        Unlike the engine-level update, this physical operation *does* allow
        key attributes to change: the transformation framework morphs rows
        (e.g. a FOJ NULL record acquiring an R part).  Unique violations on
        the new image raise before anything is modified.
        """
        self.faults.fire(SITE_TABLE_UPDATE, table=self.name, rowid=rowid)
        row = self.rows.get(rowid)
        if row is None:
            raise NoSuchRowError(self.name, (rowid,))
        if self._indexed_attrs.isdisjoint(changes):
            # No indexed attribute changes: skip the unique pre-checks,
            # the before-image copies and the per-index re-bucketing.
            has_attribute = self.schema.has_attribute
            for attr in changes:
                if not has_attribute(attr):
                    raise SchemaError(
                        f"unknown attribute {attr!r} for table "
                        f"{self.name!r}")
            row.values.update(changes)
            if lsn is not None:
                row.lsn = lsn
            return row
        old_values = dict(row.values)
        new_values = dict(old_values)
        for attr, value in changes.items():
            if not self.schema.has_attribute(attr):
                raise SchemaError(
                    f"unknown attribute {attr!r} for table {self.name!r}"
                )
            new_values[attr] = value
        for index in self.indexes.values():
            if not index.unique:
                continue
            old_key = index_key(old_values, index.attrs)
            new_key = index_key(new_values, index.attrs)
            if new_key is not None and new_key != old_key:
                existing = index.lookup(new_key)
                if existing and existing != [rowid]:
                    raise DuplicateKeyError(self.name, new_key)
        row.values.update(changes)
        for index in self.indexes.values():
            index.update(old_values, row.values, rowid)
        if lsn is not None:
            row.lsn = lsn
        return row

    def drop_attributes(self, names: Sequence[str]) -> None:
        """Remove columns from the table in place.

        Used by the rename-based split synchronization (paper Section 5.2,
        alternative strategy): the attributes that moved to S "are removed
        first", then T is renamed to R.  Primary-key columns cannot be
        dropped; indexes referencing a dropped column are dropped with it.
        """
        drop_set = set(names)
        if not drop_set:
            return
        missing = [n for n in drop_set if not self.schema.has_attribute(n)]
        if missing:
            raise SchemaError(
                f"cannot drop missing attributes {missing} from "
                f"{self.name!r}")
        in_key = drop_set & set(self.schema.primary_key)
        if in_key:
            raise SchemaError(
                f"cannot drop primary-key attributes {sorted(in_key)} "
                f"from {self.name!r}")
        for index_name in list(self.indexes):
            index = self.indexes[index_name]
            if drop_set & set(index.attrs):
                del self.indexes[index_name]
        self._refresh_indexed_attrs()
        keep = [a for a in self.schema.attributes
                if a.name not in drop_set]
        self.schema = TableSchema(self.schema.name, keep,
                                  self.schema.primary_key)
        for row in self.rows.values():
            for name in drop_set:
                row.values.pop(name, None)

    # -- logical (key-based) access ----------------------------------------------

    def get(self, key: Tuple) -> Optional[Row]:
        """Row with the given primary-key tuple, or ``None``."""
        rowid = self._primary.lookup_one(tuple(key))
        return None if rowid is None else self.rows[rowid]

    def require(self, key: Tuple) -> Row:
        """Row with the given primary key; raises if absent."""
        row = self.get(key)
        if row is None:
            raise NoSuchRowError(self.name, tuple(key))
        return row

    def contains_key(self, key: Tuple) -> bool:
        """Whether a row with this primary key exists."""
        return self._primary.contains(tuple(key))

    def delete_key(self, key: Tuple) -> Row:
        """Delete the row with the given primary key."""
        return self.delete_rowid(self.require(key).rowid)

    def update_key(self, key: Tuple, changes: Dict[str, object],
                   lsn: Optional[int] = None) -> Row:
        """Update the row with the given primary key."""
        return self.update_rowid(self.require(key).rowid, changes, lsn)

    def lookup(self, index_name: str, key: Tuple) -> List[Row]:
        """Rows matching ``key`` in the named index, in rowid order."""
        index = self.index(index_name)
        return [self.rows[rid] for rid in index.lookup(tuple(key))]

    # -- scans ---------------------------------------------------------------------

    def scan(self) -> Iterator[Row]:
        """Iterate over live rows in physical (insertion) order.

        The iteration tolerates concurrent inserts/deletes between ``next``
        calls by materializing the rowid list at call time; rows inserted
        after the call starts are *not* seen (fuzzy scans re-materialize per
        chunk instead -- see :mod:`repro.engine.fuzzy`).
        """
        for rowid in list(self.rows):
            row = self.rows.get(rowid)
            if row is not None:
                yield row

    def select(self, predicate: Optional[Callable[[Row], bool]] = None
               ) -> List[Row]:
        """Materialized scan, optionally filtered."""
        if predicate is None:
            return list(self.scan())
        return [row for row in self.scan() if predicate(row)]

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return len(self.rows)

    def max_rowid(self) -> int:
        """Largest live rowid (0 when empty); fuzzy-scan cursor bound."""
        return max(self.rows) if self.rows else 0

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.row_count} rows)"
