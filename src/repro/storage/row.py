"""Stored row representation.

A row couples its attribute values with the state metadata the paper's
machinery needs:

* ``lsn`` -- the LSN of the last logged operation applied to the row.  The
  fuzzy-copy technique (Section 2.2) and the split propagation rules
  (Rules 8-11) use record LSNs as state identifiers to make redo
  idempotent.  FOJ-transformed rows also carry an LSN but the FOJ rules
  deliberately ignore it (Section 4.2: a joined row has no single valid
  state identifier).
* ``meta`` -- side metadata owned by the transformation framework: the
  duplicate ``counter`` and C/U consistency ``flag`` of split S-records
  (Sections 5, 5.3), and the ``r_null`` / ``s_null`` markers identifying
  which side of a FOJ row is a NULL record.
"""

from __future__ import annotations

import itertools
from typing import Dict, Mapping, Optional

from repro.wal.records import NULL_LSN

_rowid_counter = itertools.count(1)


class Row:
    """A stored record: values + LSN + framework metadata.

    Rows are identified physically by ``rowid`` (unique per process) and
    logically by the primary-key tuple derived from their values.  Rows are
    mutated in place by the storage layer only; everything above works
    through :class:`repro.storage.table.Table`.
    """

    __slots__ = ("rowid", "values", "lsn", "meta")

    def __init__(self, values: Dict[str, object], lsn: int = NULL_LSN,
                 meta: Optional[Dict[str, object]] = None) -> None:
        self.rowid: int = next(_rowid_counter)
        self.values = values
        self.lsn = lsn
        self.meta: Dict[str, object] = meta if meta is not None else {}

    def snapshot(self) -> "Row":
        """Deep-enough copy for fuzzy reads: same rowid, copied values/meta.

        Fuzzy scans hand out snapshots so later in-place updates by user
        transactions cannot retroactively change what the scan observed.
        """
        copy = Row.__new__(Row)
        copy.rowid = self.rowid
        copy.values = dict(self.values)
        copy.lsn = self.lsn
        copy.meta = dict(self.meta)
        return copy

    def get(self, attr: str) -> object:
        """Value of a single attribute."""
        return self.values[attr]

    def matches(self, predicate: Mapping[str, object]) -> bool:
        """Whether every (attr, value) pair of ``predicate`` holds."""
        return all(self.values.get(k) == v for k, v in predicate.items())

    def __repr__(self) -> str:
        extra = f" meta={self.meta}" if self.meta else ""
        return f"Row#{self.rowid}(lsn={self.lsn}, {self.values}{extra})"
