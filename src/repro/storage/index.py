"""Hash indexes over stored rows.

The paper's propagation rules are driven by index lookups: the join-attribute
index and S-key index of a FOJ target table "provide fast lookup on all
T-records that are affected by an operation on an S-record" (Section 4.1).
We provide hash indexes (the reproduced prototype is a main-memory store and
all rule lookups are point lookups).

Indexes follow *partial-index* semantics with respect to NULL: an index key
containing ``None`` in any position is not indexed.  This is what lets a FOJ
target table declare a unique primary index on the R-key attributes while
still holding ``t^null_x`` rows whose R part is entirely NULL.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.common.errors import DuplicateKeyError

#: Default capacity (distinct keys) of the per-index LRU probe cache.
DEFAULT_PROBE_CACHE_SIZE = 256


def index_key(values: Dict[str, object],
              attrs: Tuple[str, ...]) -> Optional[Tuple]:
    """Extract the index key for ``attrs``; ``None`` if any part is NULL."""
    if len(attrs) == 1:
        part = values.get(attrs[0])
        return None if part is None else (part,)
    key = tuple(values.get(a) for a in attrs)
    return None if None in key else key


class HashIndex:
    """A (possibly unique) hash index mapping key tuples to rowids.

    Args:
        name: Index name, unique within its table.
        attrs: Indexed attribute names, in key order.
        unique: Whether two distinct rows may share a key.  Uniqueness is
            enforced at insert time with :class:`DuplicateKeyError`.
        table_name: Owning table name, used only for error messages.
    """

    def __init__(self, name: str, attrs: Tuple[str, ...], unique: bool,
                 table_name: str = "",
                 probe_cache_size: int = DEFAULT_PROBE_CACHE_SIZE) -> None:
        self.name = name
        self.attrs = tuple(attrs)
        self.unique = unique
        self.table_name = table_name
        self._map: Dict[Tuple, Set[int]] = {}
        # Bounded LRU cache of sorted probe results, keyed by index key.
        # The propagation rules probe the same join values over and over
        # (every S-side change probes all matching T rows); caching the
        # sorted rowid tuple amortizes the sort.  Writes invalidate only
        # the keys they touch, so a hit is always exact.
        # Each cached entry carries the key's version stamp at probe
        # time; a stamp mismatch at lookup means a row version changed
        # under the key through a path that skips index maintenance
        # (MVCC commit stamping, version GC) and the entry is stale.
        self._probe_cache: "OrderedDict[Tuple, Tuple[int, Tuple[int, ...]]]" \
            = OrderedDict()
        self._probe_cache_size = max(0, probe_cache_size)
        self._version_stamps: Dict[Tuple, int] = {}
        self.probe_stats = {"hits": 0, "misses": 0, "invalidations": 0,
                            "stale": 0}

    # -- maintenance ---------------------------------------------------------

    def insert(self, values: Dict[str, object], rowid: int) -> None:
        """Index a row image under its key (no-op for NULL-containing keys)."""
        key = index_key(values, self.attrs)
        if key is None:
            return
        self._invalidate(key)
        bucket = self._map.get(key)
        if bucket is None:
            self._map[key] = {rowid}
            return
        if self.unique and bucket and rowid not in bucket:
            raise DuplicateKeyError(self.table_name or "?", key)
        bucket.add(rowid)

    def remove(self, values: Dict[str, object], rowid: int) -> None:
        """Un-index a row image (no-op for NULL-containing keys)."""
        key = index_key(values, self.attrs)
        if key is None:
            return
        self._invalidate(key)
        bucket = self._map.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._map[key]

    def update(self, old_values: Dict[str, object],
               new_values: Dict[str, object], rowid: int) -> None:
        """Move a row between buckets when its key changed."""
        old_key = index_key(old_values, self.attrs)
        new_key = index_key(new_values, self.attrs)
        if old_key == new_key:
            return
        if old_key is not None:
            self.remove(old_values, rowid)
        if new_key is not None:
            self.insert(new_values, rowid)

    def clear(self) -> None:
        """Drop all entries."""
        self._map.clear()
        self._probe_cache.clear()
        self._version_stamps.clear()

    def _invalidate(self, key: Tuple) -> None:
        """Drop the cached probe result for a key a write touched."""
        self._version_stamps[key] = self._version_stamps.get(key, 0) + 1
        if self._probe_cache.pop(key, None) is not None:
            self.probe_stats["invalidations"] += 1

    def note_version_change(self, key: Tuple) -> None:
        """Version-aware invalidation for out-of-band version changes.

        The index maintenance hooks (:meth:`insert` / :meth:`remove` /
        :meth:`update`) only run when a write goes through the table's
        index bookkeeping.  MVCC commit stamping and version GC change
        which row version is current for a key *without* touching the
        index -- and the indexed-attrs-disjoint fast path in
        ``Table.update_rowid`` skips the hooks entirely.  Bumping the
        key's version stamp here guarantees any probe cached against the
        superseded version can never be served again.
        """
        self._invalidate(tuple(key))

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: Tuple) -> List[int]:
        """Rowids with exactly this key (empty for NULL-containing keys)."""
        if any(part is None for part in key):
            return []
        key = tuple(key)
        cache = self._probe_cache
        stamp = self._version_stamps.get(key, 0)
        cached = cache.get(key)
        if cached is not None:
            cached_stamp, rowids = cached
            if cached_stamp == stamp:
                cache.move_to_end(key)
                self.probe_stats["hits"] += 1
                return list(rowids)
            # A version changed under this key since the probe was
            # cached; the entry may describe a superseded row version.
            del cache[key]
            self.probe_stats["stale"] += 1
        self.probe_stats["misses"] += 1
        bucket = self._map.get(key)
        result = sorted(bucket) if bucket else []
        if self._probe_cache_size:
            cache[key] = (stamp, tuple(result))
            if len(cache) > self._probe_cache_size:
                cache.popitem(last=False)
        return result

    def lookup_one(self, key: Tuple) -> Optional[int]:
        """Single rowid for a unique index, ``None`` if absent."""
        rowids = self.lookup(key)
        if not rowids:
            return None
        return rowids[0]

    def contains(self, key: Tuple) -> bool:
        """Whether any row is indexed under ``key``."""
        return bool(self.lookup(key))

    def count(self, key: Tuple) -> int:
        """Number of rows indexed under ``key``."""
        if any(part is None for part in key):
            return 0
        bucket = self._map.get(tuple(key))
        return len(bucket) if bucket else 0

    def keys(self) -> Iterator[Tuple]:
        """All distinct keys currently indexed."""
        return iter(self._map.keys())

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self._map)

    def __repr__(self) -> str:
        u = "unique " if self.unique else ""
        return f"HashIndex({self.name!r}, {u}on {self.attrs}, {len(self)} keys)"
