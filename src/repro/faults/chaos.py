"""Seeded chaos runs: crash sites composed with disk faults.

One :func:`chaos_run` draws a full experiment from a single seed -- the
operator, synchronization strategy, group-commit flush policy, a
randomized workload, a crash point (any injection site the scenario
crosses, at a random crossing) and optionally one disk fault armed on
the ``disk.sync`` site before the crash:

* :class:`~repro.faults.TornWriteFault` -- the kill cuts the final
  flush mid-frame; salvage must truncate the torn tail and recovery must
  succeed on the remaining prefix;
* :class:`~repro.faults.LostFlushFault` -- one or more fsyncs lie;
  the crash loses a frame-aligned tail that the log *believed* was
  flushed, and the durability-aware oracle must accept exactly the
  commits whose records really reached the platter;
* :class:`~repro.faults.BitFlipFault` -- a synced frame rots; salvage
  must detect the checksum mismatch and either quarantine the log
  (mid-log corruption) or truncate a corrupt final frame -- a flipped
  bit must never be silently applied.

Every run is fully reproducible from its integer seed; on a violation
the returned report carries a one-line repro recipe.  The soak driver is
``python -m benchmarks.chaos_soak``; a bounded slice runs in CI via
``tests/fault_matrix.py``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.common.errors import LogCorruptionError, SimulatedCrashError
from repro.engine.recovery import restart
from repro.faults.injection import (
    BitFlipFault,
    CrashFault,
    FaultInjector,
    FaultPlan,
    LostFlushFault,
    TornWriteFault,
)
from repro.faults.sweep import (
    ALL_STRATEGIES,
    SCENARIO_OPERATORS,
    ScenarioRun,
    check_completed,
    check_recovered,
    check_salvage,
)
from repro.wal.durable import SITE_DISK_SYNC, _frame_regions
from repro.wal.frames import SEGMENT_HEADER, encode_frame
from repro.wal.log import (
    GROUP_FLUSH,
    IMMEDIATE_FLUSH,
    FlushPolicy,
    LogManager,
)

#: Flush policies the chaos layer samples from: immediate (every commit
#: durable at once), the stock group-commit policy, and a small-batch
#: coalescer that trips its thresholds often.
CHAOS_POLICIES = (
    IMMEDIATE_FLUSH,
    GROUP_FLUSH,
    FlushPolicy(max_pending_requests=4, max_pending_records=16),
)

_FAULT_KINDS = ("none", "torn_write", "lost_flush", "bit_flip")


def _policy_name(policy: FlushPolicy) -> str:
    if policy.immediate:
        return "immediate"
    return (f"group({policy.max_pending_requests},"
            f"{policy.max_pending_records})")


def _byte_identity(run: ScenarioRun, log: LogManager) -> List[str]:
    """The salvaged prefix must equal re-encoding the salvaged records."""
    salvage = log.salvage
    reencoded = SEGMENT_HEADER + b"".join(
        encode_frame(record) for record in salvage.records)
    surviving = run.disk.crash_image()[:salvage.byte_length]
    if reencoded != surviving:
        return ["salvaged prefix is not byte-identical under re-encode "
                f"({len(surviving)} bytes on disk, "
                f"{len(reencoded)} re-encoded)"]
    return []


def chaos_run(seed: int, metrics=None,
              flight=None) -> Dict[str, object]:
    """One seeded crash x disk-fault experiment; returns a report dict.

    The report's ``violations`` list is empty iff every durability and
    recovery invariant held; ``repro`` is a one-line recipe that re-runs
    exactly this experiment.

    When a :class:`~repro.obs.metrics.Metrics` registry is passed, the
    *armed* pass runs observed -- spans, trace events and blame edges
    accumulate in it, so a violating seed can be dumped as a postmortem
    bundle (:func:`repro.obs.flight.postmortem_bundle`) carrying the
    run's final spans and blame edges next to the violation list.  A
    :class:`~repro.obs.flight.FlightRecorder` passed as ``flight``
    additionally captures every fault firing as a moment *before* the
    fault acts (a crash fault never returns control).
    """
    rng = random.Random(seed)
    operator = rng.choice(SCENARIO_OPERATORS)
    strategy = rng.choice(ALL_STRATEGIES)
    policy = rng.choice(CHAOS_POLICIES)
    workload_seed = rng.randrange(1 << 16)

    report: Dict[str, object] = {
        "seed": seed,
        "operator": operator,
        "strategy": strategy.value,
        "flush_policy": _policy_name(policy),
        "workload_seed": workload_seed,
        "repro": f"python -m benchmarks.chaos_soak --seed {seed}",
        "violations": [],
    }
    violations: List[str] = report["violations"]

    # Recording pass: learn which sites this configuration crosses.
    recording = ScenarioRun(operator, strategy,
                            FaultInjector(FaultPlan()),
                            flush_policy=policy,
                            workload_seed=workload_seed)
    recording.execute()
    # Snapshot before the baseline check: its drain crosses flush/disk
    # sites once more, beyond what an armed pass can ever reach.
    hits = dict(recording.faults.hits)
    baseline = check_completed(recording)
    if baseline:
        report["outcome"] = "baseline_broken"
        violations.extend(f"fault-free baseline: {b}" for b in baseline)
        return report
    crash_site = rng.choice(sorted(hits))
    count = hits[crash_site]
    # Bias the kill into the interesting part of the scenario rather
    # than the first crossings (usually the bulk load).
    crash_hit = rng.randint(max(1, count // 3), count)
    fault_kind = rng.choice(_FAULT_KINDS)
    sync_total = hits.get(SITE_DISK_SYNC, 0)

    plan = FaultPlan()
    disk_hit: Optional[int] = None
    if fault_kind != "none" and sync_total:
        hi = sync_total
        if crash_site == SITE_DISK_SYNC:
            # The injector fires one arming per crossing; keep the disk
            # fault strictly before the crash so both take effect.
            hi = crash_hit - 1
        if hi >= 1:
            disk_hit = rng.randint(1, hi)
            if fault_kind == "torn_write":
                plan.arm(SITE_DISK_SYNC, TornWriteFault(), hit=disk_hit)
            elif fault_kind == "lost_flush":
                plan.arm(SITE_DISK_SYNC, LostFlushFault(), hit=disk_hit,
                         times=rng.randint(1, 3))
            else:
                plan.arm(SITE_DISK_SYNC,
                         BitFlipFault(bit=rng.randrange(64)),
                         hit=disk_hit)
        else:
            fault_kind = "none"
    elif fault_kind != "none":
        fault_kind = "none"
    plan.arm(crash_site, CrashFault(), hit=crash_hit)
    report.update(crash_site=crash_site, crash_hit=crash_hit,
                  disk_fault=fault_kind, disk_fault_hit=disk_hit)

    if flight is not None and metrics is None:
        metrics = flight.metrics
    run = ScenarioRun(operator, strategy, FaultInjector(plan),
                      flush_policy=policy, workload_seed=workload_seed,
                      metrics=metrics)
    if flight is not None:
        run.faults.on_fire = flight.note_fault
    try:
        run.execute()
    except SimulatedCrashError:
        pass
    else:
        report["outcome"] = "not_hit"
        violations.append(
            f"armed crash at {crash_site} hit {crash_hit} never fired")
        return report

    fired_kinds = {kind for (_, _, kind) in run.faults.fired}
    disk_fault_fired = fault_kind != "none" and fault_kind in fired_kinds
    # Facts captured before salvage reopens (and thereby resets) the disk.
    raw_durable = bytes(run.disk._buffer[:run.disk._durable_len])
    durable_frames = len(_frame_regions(bytearray(raw_durable)))

    try:
        salvaged = LogManager.from_disk(run.disk)
    except LogCorruptionError as exc:
        if fault_kind == "bit_flip" and disk_fault_fired:
            # The rotten frame was detected and the log quarantined with
            # nothing applied -- the required outcome for mid-log rot.
            report["outcome"] = "quarantined"
            report["salvaged_records"] = len(exc.salvaged)
        else:
            report["outcome"] = "violation"
            violations.append(
                f"salvage quarantined a log with no bit rot: {exc}")
        return report

    salvage = salvaged.salvage
    report["salvage"] = salvage.describe()
    if fault_kind == "bit_flip" and disk_fault_fired:
        if salvage.tail_corrupt:
            # The flip landed in the only/final frame: truncated, never
            # applied -- acceptable, and recovery must still succeed.
            report["outcome"] = "tail_truncated"
        elif durable_frames > 0:
            report["outcome"] = "violation"
            violations.append(
                "a fired bit flip was neither quarantined nor truncated "
                f"({durable_frames} durable frames, salvage "
                f"{salvage.describe()})")
            return report
        else:
            report["outcome"] = "recovered"
    elif fault_kind == "torn_write" and disk_fault_fired:
        # A tear at a frame boundary is a clean truncation; anything else
        # must be reported as torn.  Either way, no quarantine.
        report["outcome"] = "recovered"
        violations.extend(_byte_identity(run, salvaged))
    elif fault_kind == "lost_flush" and disk_fault_fired:
        # Lying fsyncs lose a frame-aligned tail: the surviving prefix
        # must be clean, even though the log believed it was flushed.
        report["outcome"] = "recovered"
        if salvage.torn or salvage.tail_corrupt:
            violations.append(
                f"lost flush left a non-aligned prefix: "
                f"{salvage.describe()}")
        violations.extend(_byte_identity(run, salvaged))
    else:
        report["outcome"] = "recovered"
        violations.extend(check_salvage(run, salvaged))

    # Recovery runs on the same registry, so the postmortem's span tree
    # shows the analysis/redo/undo passes that followed the crash.
    recovered = restart(salvaged, metrics=metrics)
    violations.extend(check_recovered(run, recovered, salvaged))
    if violations:
        report["outcome"] = "violation"
    return report
