"""Crash-at-every-step sweep over the registered injection sites.

The harness runs a deterministic concurrent-workload scenario (bulk load,
interleaved user transactions, a long-lived "old" transaction, an aborted
transaction and post-swap probes) around one online transformation --
full outer join or split -- under one synchronization strategy.  A first
*recording* pass executes the scenario fault-free and counts how often
each registered injection site is crossed.  The sweep then re-runs the
identical scenario once per crossed site with a :class:`CrashFault` armed
mid-scenario, catches the :class:`SimulatedCrashError`, abandons all
volatile state (the simulated kill of Section 6) and reruns ARIES
:func:`~repro.engine.recovery.restart` on the surviving log.

After every recovery the harness asserts the paper's crash invariants:

* committed user data is preserved -- sources match a shadow copy of the
  committed state before the swap, published tables match the relational
  operator applied to that shadow state after the swap;
* transient transformation targets are discarded (crash before the
  :class:`~repro.wal.records.TransformSwapRecord`) or deterministically
  rebuilt (crash after it), cf. Section 6 "no actions performed by the
  transformation need to be repeated [after the swap]";
* loser transactions -- including transactions doomed by a non-blocking
  synchronization -- are rolled back to completion (every begun
  transaction has an end record, no active transactions survive);
* no latches, table blocks or propagated proxy locks leak into the
  recovered database: a fresh probe transaction can write to every
  visible table.

The shadow copy resolves in-flight transactions exactly like recovery
does: a transaction whose commit record made it into the log before the
crash counts as committed; everything else is dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulatedCrashError
from repro.engine.database import Database, Transaction
from repro.engine.recovery import restart
from repro.faults.injection import (
    NULL_FAULTS,
    CrashFault,
    FaultInjector,
    FaultPlan,
    SITE_REGISTRY,
)
from repro.relational.operators import (
    full_outer_join,
    normalize_rows,
    rows_equal,
    split,
)
from repro.relational.spec import FojSpec, SplitSpec
from repro.storage.schema import TableSchema
from repro.transform.analysis import RemainingRecordsPolicy
from repro.transform.base import Phase, SyncStrategy, Transformation
from repro.transform.foj import FojTransformation
from repro.transform.options import TransformOptions
from repro.transform.split import SplitTransformation
from repro.wal.records import (
    BeginRecord,
    CommitRecord,
    EndRecord,
    TransformSwapRecord,
)

RowDict = Dict[str, object]

#: Operators the sweep exercises (FOJ and split, Sections 4 and 5).
#: ``name@N`` runs the same scenario through an N-way sharded pipeline
#: (:mod:`repro.shard`), adding the shard-scoped crash sites -- partial
#: population, mid-window shard crashes, barrier and merge crashes -- to
#: the sweep's coverage.  ``name:lazy`` runs the scenario with
#: access-triggered population (``population_mode="lazy"``), interleaving
#: user reads with small sweep steps so both migrate-on-read crash sites
#: (``lazy.miss.transform``, ``lazy.sweep.chunk``) are crossed; the two
#: notations compose (``split:lazy@3``).
SCENARIO_OPERATORS: Tuple[str, ...] = (
    "foj", "split", "foj@2", "split@3", "foj:lazy", "split:lazy@3")

#: All three synchronization strategies (Section 3.4).
ALL_STRATEGIES: Tuple[SyncStrategy, ...] = (
    SyncStrategy.BLOCKING_COMMIT,
    SyncStrategy.NONBLOCKING_ABORT,
    SyncStrategy.NONBLOCKING_COMMIT,
)

_STEP_BUDGET = 24
_MAX_STEPS = 3000


# ---------------------------------------------------------------------------
# Shadow copy of the committed state
# ---------------------------------------------------------------------------


class _Shadow:
    """Key-addressed copy of the committed user data, per table.

    Operations are buffered per transaction and applied at commit; at a
    crash, :meth:`resolve_crash` settles in-flight transactions the same
    way recovery will -- committed iff the commit record reached the log.
    """

    def __init__(self) -> None:
        self.tables: Dict[str, Dict[Tuple, RowDict]] = {}
        self.pending: Dict[int, List[Tuple]] = {}

    def begin(self, txn_id: int) -> None:
        self.pending[txn_id] = []

    def insert(self, txn_id: int, table: str, key: Tuple,
               values: RowDict) -> None:
        self.pending[txn_id].append(("i", table, key, dict(values)))

    def update(self, txn_id: int, table: str, key: Tuple,
               changes: RowDict) -> None:
        self.pending[txn_id].append(("u", table, key, dict(changes)))

    def delete(self, txn_id: int, table: str, key: Tuple) -> None:
        self.pending[txn_id].append(("d", table, key, None))

    def commit(self, txn_id: int) -> None:
        for op, table, key, payload in self.pending.pop(txn_id):
            rows = self.tables.setdefault(table, {})
            if op == "i":
                rows[key] = dict(payload)
            elif op == "u":
                rows[key].update(payload)
            else:
                del rows[key]

    def drop(self, txn_id: int) -> None:
        self.pending.pop(txn_id, None)

    def resolve_crash(self, log) -> None:
        """Settle in-flight transactions against the surviving log."""
        committed = {r.txn_id for r in log.scan()
                     if isinstance(r, CommitRecord)}
        for txn_id in sorted(self.pending):
            if txn_id in committed:
                self.commit(txn_id)
            else:
                self.drop(txn_id)

    def rows(self, table: str) -> List[RowDict]:
        return [dict(v) for v in self.tables.get(table, {}).values()]


# ---------------------------------------------------------------------------
# The scenario
# ---------------------------------------------------------------------------


class ScenarioRun:
    """One deterministic execution of the sweep workload.

    The same script runs for the recording pass and for every armed pass;
    an armed :class:`CrashFault` leaves the prefix bit-identical, so site
    crossing counts from the recording pass predict exactly where each
    armed pass dies.
    """

    def __init__(self, operator: str, strategy: SyncStrategy,
                 faults: Optional[FaultInjector] = None) -> None:
        base, _, shard_suffix = operator.partition("@")
        shards = int(shard_suffix) if shard_suffix else 1
        base, _, mode = base.partition(":")
        mode = mode or "eager"
        if base not in ("foj", "split") or shards < 1 or \
                mode not in ("eager", "lazy"):
            raise ValueError(f"unknown sweep operator {operator!r}")
        self.operator = operator
        self.operator_base = base
        self.shards = shards
        self.population_mode = mode
        self.strategy = strategy
        self.faults = faults if faults is not None else FaultInjector()
        self.db = Database()
        self.db.attach_faults(self.faults)
        self.log = self.db.log
        self.shadow = _Shadow()
        self.tf: Optional[Transformation] = None
        self.spec = None
        self.source_names: Tuple[str, ...] = ()
        self.published_names: Tuple[str, ...] = ()
        self._mutations: List[Callable[[], None]] = []
        self._l_txn: Optional[Transaction] = None
        self._l_op: Optional[Tuple] = None
        self._l_zombie_op: Optional[Tuple] = None
        self._lazy_reads: List[Tuple[str, Tuple]] = []
        self._probes: List[Tuple[str, RowDict]] = []

    def _tf_options(self) -> TransformOptions:
        return TransformOptions(
            sync=self.strategy,
            policy=RemainingRecordsPolicy(max_remaining=2, patience=200),
            population_chunk=4, shards=self.shards,
            population_mode=self.population_mode)

    # -- committed-state bookkeeping ------------------------------------

    def _apply(self, txn: Transaction, op: Tuple) -> None:
        kind, table_name = op[0], op[1]
        schema = self.db.catalog.get_any(table_name).schema
        if kind == "i":
            values = schema.normalize(op[2])
            self.db.insert(txn, table_name, values)
            self.shadow.insert(txn.txn_id, table_name,
                               schema.key_of(values), values)
        elif kind == "u":
            key, changes = tuple(op[2]), op[3]
            self.db.update(txn, table_name, key, changes)
            self.shadow.update(txn.txn_id, table_name, key, changes)
        elif kind == "d":
            key = tuple(op[2])
            self.db.delete(txn, table_name, key)
            self.shadow.delete(txn.txn_id, table_name, key)
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown op kind {kind!r}")

    def _txn_do(self, ops: Sequence[Tuple], abort: bool = False) -> None:
        txn = self.db.begin()
        self.shadow.begin(txn.txn_id)
        for op in ops:
            self._apply(txn, op)
        if abort:
            self.db.abort(txn)
            self.shadow.drop(txn.txn_id)
        else:
            self.db.commit(txn)
            self.shadow.commit(txn.txn_id)

    # -- scenario scripts ------------------------------------------------

    def _setup_foj(self) -> None:
        self.db.create_table(
            TableSchema("R", ["a", "b", "c"], primary_key=["a"]))
        self.db.create_table(
            TableSchema("S", ["c", "d", "e"], primary_key=["c"]))
        self.spec = FojSpec.derive(
            self.db.table("R").schema, self.db.table("S").schema,
            target_name="T", join_attr_r="c", join_attr_s="c")
        # Names before the bulk load: an armed crash can fire inside the
        # load, and the recovery checks need to know what to expect.
        self.source_names = ("R", "S")
        self.published_names = ("T",)
        self._txn_do(
            [("i", "R", {"a": i, "b": f"b{i}", "c": i % 5})
             for i in range(10)] +
            [("i", "S", {"c": c, "d": f"d{c}", "e": f"e{c}"})
             for c in range(4)])
        self.tf = FojTransformation(
            self.db, self.spec, options=self._tf_options())
        self._l_op = ("u", "R", (0,), {"b": "L0"})
        self._l_zombie_op = ("u", "R", (0,), {"b": "Lz"})
        self._lazy_reads = [("R", (1,)), ("R", (4,)), ("R", (7,)),
                            ("S", (2,))]
        self._mutations = [
            # The S update first: it lands while log propagation is still
            # running, which in the sharded pipeline makes it a barrier
            # record (S rows fan out across every shard's carriers).
            lambda: self._txn_do([("u", "S", (1,), {"d": "dX"})]),
            lambda: self._txn_do(
                [("i", "R", {"a": 20, "b": "b20", "c": 2})]),
            lambda: self._txn_do([("d", "R", (5,))]),
            lambda: self._txn_do([("u", "R", (2,), {"b": "mX"})],
                                 abort=True),
            lambda: self._txn_do(
                [("i", "S", {"c": 9, "d": "d9", "e": "e9"})]),
            lambda: self._txn_do([("u", "R", (3,), {"b": "bX"})]),
            lambda: self._txn_do(
                [("i", "R", {"a": 21, "b": "b21", "c": 9})]),
        ]
        self._probes = [("T", {"a": 95001, "b": "probe", "c": 95001})]

    def _setup_split(self) -> None:
        self.db.create_table(TableSchema(
            "T", ["id", "name", "zip", "city"], primary_key=["id"]))
        self.spec = SplitSpec.derive(
            self.db.table("T").schema, r_name="T_r", s_name="postal",
            split_attr="zip", s_attrs=["city"])
        # Names before the bulk load (see _setup_foj).
        self.source_names = ("T",)
        self.published_names = ("T_r", "postal")
        rows = []
        for i in range(9):
            z = 7000 + (i % 3)
            rows.append(("i", "T", {"id": i, "name": f"n{i}", "zip": z,
                                    "city": f"C{z}"}))
        rows.append(("i", "T", {"id": 9, "name": "n9", "zip": 7009,
                                "city": "C7009"}))
        self._txn_do(rows)
        self.tf = SplitTransformation(
            self.db, self.spec, check_consistency=True,
            on_inconsistent="wait", options=self._tf_options())
        self._l_op = ("u", "T", (1,), {"name": "Ln"})
        self._l_zombie_op = ("u", "T", (1,), {"name": "Lz"})
        self._lazy_reads = [("T", (2,)), ("T", (5,)), ("T", (8,))]
        self._mutations = [
            lambda: self._txn_do(
                [("i", "T", {"id": 20, "name": "n20", "zip": 7001,
                             "city": "C7001"})]),
            # Touch every contributor of zip 7000 in one transaction: each
            # update U-flags the S record (counter > 1), the consistency
            # checker later finds the contributors agreeing on "CX".
            lambda: self._txn_do([
                ("u", "T", (0,), {"city": "CX"}),
                ("u", "T", (3,), {"city": "CX"}),
                ("u", "T", (6,), {"city": "CX"}),
            ]),
            lambda: self._txn_do([("d", "T", (4,))]),
            lambda: self._txn_do([("u", "T", (2,), {"name": "mX"})],
                                 abort=True),
            lambda: self._txn_do([("u", "T", (9,), {"name": "nX"})]),
            lambda: self._txn_do(
                [("i", "T", {"id": 21, "name": "n21", "zip": 7021,
                             "city": "C7021"})]),
        ]
        self._probes = [
            ("T_r", {"id": 95001, "name": "probe", "zip": 95001}),
            ("postal", {"zip": 95002, "city": "probe"}),
        ]

    # -- driving ---------------------------------------------------------

    def execute(self) -> None:
        """Run the full scenario; raises :class:`SimulatedCrashError`
        when an armed crash fault fires."""
        if self.operator_base == "foj":
            self._setup_foj()
        else:
            self._setup_split()

        # The long-lived transaction the synchronization strategies
        # disagree about: drained (blocking commit), doomed (non-blocking
        # abort) or carried across the swap (non-blocking commit).
        self._l_txn = self.db.begin()
        self.shadow.begin(self._l_txn.txn_id)
        self._apply(self._l_txn, self._l_op)

        if self.population_mode == "lazy":
            # One deliberately tiny first step keeps POPULATING open
            # (the coordinator multiplies the budget by the shard count,
            # so even budget 1 sweeps a few rows), and the interleaved
            # reads then hit not-yet-migrated source records, crossing
            # the migrate-on-read crash sites.
            self.tf.step(1)
            txn = self.db.begin()
            for table_name, key in self._lazy_reads:
                self.db.read(txn, table_name, key)
            self.db.commit(txn)

        mutations = list(self._mutations)
        l_active = True
        for _ in range(_MAX_STEPS):
            report = self.tf.step(_STEP_BUDGET)
            if l_active and (self._l_txn.doomed or
                             self._l_txn.is_finished):
                # Non-blocking abort doomed and rolled back L.
                self.shadow.drop(self._l_txn.txn_id)
                l_active = False
            if report.done:
                break
            if mutations and self.tf.phase in (Phase.POPULATING,
                                               Phase.PROPAGATING):
                mutations.pop(0)()
            if l_active and self.strategy is SyncStrategy.BLOCKING_COMMIT \
                    and self.tf.phase is Phase.SYNCHRONIZING:
                # Let the drain finish: commit L.
                self.db.commit(self._l_txn)
                self.shadow.commit(self._l_txn.txn_id)
                l_active = False
            if l_active and \
                    self.strategy is SyncStrategy.NONBLOCKING_COMMIT \
                    and self.tf.phase is Phase.BACKGROUND:
                # L lives on as an old transaction: one more write through
                # the zombie namespace, then commit (ends the mirror).
                self._apply(self._l_txn, self._l_zombie_op)
                self.db.commit(self._l_txn)
                self.shadow.commit(self._l_txn.txn_id)
                l_active = False
        else:
            raise AssertionError(
                f"scenario did not finish within {_MAX_STEPS} steps "
                f"({self.operator}/{self.strategy.value}, "
                f"phase {self.tf.phase.value})")

        # Post-swap probes: plain user transactions against the published
        # schema (their redo must land in recovery's rebuilt tables).
        for table_name, values in self._probes:
            self._txn_do([("i", table_name, values)])

    # -- expectations ----------------------------------------------------

    def expected_tables(self, swapped: bool) -> Dict[str, List[RowDict]]:
        """Committed state the database must show, from the shadow copy.

        Before the swap that is simply the shadow sources; after it, the
        relational operator applied to the shadow sources plus any rows
        committed directly into the published tables (probes).
        """
        if not swapped:
            return {name: self.shadow.rows(name)
                    for name in self.source_names}
        if self.operator_base == "foj":
            base = {"T": full_outer_join(self.spec, self.shadow.rows("R"),
                                         self.shadow.rows("S"))}
        else:
            r_rows, s_rows, _, _ = split(self.spec, self.shadow.rows("T"),
                                         strict=False)
            base = {"T_r": r_rows, "postal": s_rows}
        for name in self.published_names:
            base[name] = list(base.get(name, [])) + self.shadow.rows(name)
        return base


# ---------------------------------------------------------------------------
# Invariant checks
# ---------------------------------------------------------------------------


def _table_values(db: Database, name: str) -> List[RowDict]:
    return [dict(r.values) for r in db.catalog.get_any(name).scan()]


def _diff(name: str, actual: List[RowDict],
          expected: List[RowDict]) -> Optional[str]:
    if rows_equal(actual, expected):
        return None
    return (f"table {name!r} diverged from committed state: "
            f"actual={normalize_rows(actual)!r} "
            f"expected={normalize_rows(expected)!r}")


def _check_data(run: ScenarioRun, db: Database, swapped: bool,
                violations: List[str]) -> None:
    expected = run.expected_tables(swapped)
    names = sorted(db.catalog.table_names())
    if names != sorted(expected):
        violations.append(
            f"catalog mismatch: visible tables {names} != "
            f"expected {sorted(expected)}")
        return
    for name, rows in expected.items():
        problem = _diff(name, _table_values(db, name), rows)
        if problem:
            violations.append(problem)


def _probe_writes(db: Database, violations: List[str]) -> None:
    """A fresh transaction must be able to write every visible table
    (no leaked latch, block or proxy lock) and roll back cleanly."""
    for salt, name in enumerate(sorted(db.catalog.table_names())):
        schema = db.catalog.get(name).schema
        values = {attr: 990000 + salt * 100 + i
                  for i, attr in enumerate(schema.attribute_names)}
        txn = db.begin()
        try:
            db.insert(txn, name, values)
            db.abort(txn)
        except Exception as exc:
            violations.append(
                f"probe write into recovered table {name!r} failed: "
                f"{exc!r}")
            if not txn.is_finished:
                try:
                    db.abort(txn)
                except Exception:
                    pass


def check_recovered(run: ScenarioRun, recovered: Database) -> List[str]:
    """All crash invariants on a freshly recovered database."""
    violations: List[str] = []
    log = run.log
    swapped = any(isinstance(r, TransformSwapRecord) for r in log.scan())

    begun = {r.txn_id for r in log.scan() if isinstance(r, BeginRecord)}
    ended = {r.txn_id for r in log.scan() if isinstance(r, EndRecord)}
    unfinished = sorted(begun - ended)
    if unfinished:
        violations.append(
            f"transactions {unfinished} have no end record after "
            "recovery (losers not rolled back)")
    if recovered.txns.active_txns():
        violations.append("active transactions survived recovery")
    if recovered.locks._latches:
        violations.append(
            f"latches leaked into recovery: {recovered.locks._latches}")
    blocked = [n for n in recovered.catalog.table_names()
               if recovered.catalog.is_blocked(n)]
    if blocked:
        violations.append(f"tables still blocked after recovery: {blocked}")
    if recovered.catalog.zombie_names():
        violations.append(
            f"zombie tables survived recovery: "
            f"{recovered.catalog.zombie_names()}")

    run.shadow.resolve_crash(log)
    _check_data(run, recovered, swapped, violations)
    _probe_writes(recovered, violations)
    if not violations:
        # The probe transactions rolled back; state must be unchanged.
        _check_data(run, recovered, swapped, violations)
    return violations


def check_completed(run: ScenarioRun) -> List[str]:
    """Sanity checks on a fault-free (recording) scenario execution."""
    violations: List[str] = []
    db = run.db
    if run.shadow.pending:
        violations.append(
            f"scenario left unresolved transactions: "
            f"{sorted(run.shadow.pending)}")
    if db.locks._latches:
        violations.append(f"latches leaked: {db.locks._latches}")
    _check_data(run, db, swapped=True, violations=violations)
    return violations


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


def sweep(operator: str, strategy: SyncStrategy) -> Dict[str, object]:
    """Crash at every crossed injection site for one scenario.

    Returns a JSON-able report: per-site outcome (``ok`` / ``violation``
    / ``error`` / ``not_hit``) plus the recording pass's crossing counts.
    Each armed pass crashes at the *middle* crossing of its site, placing
    the kill inside the interesting part of the scenario rather than at
    the very first crossing (often the bulk load).
    """
    recording = ScenarioRun(operator, strategy,
                            FaultInjector(FaultPlan()))
    recording.execute()
    baseline = check_completed(recording)
    if baseline:
        raise AssertionError(
            f"fault-free scenario {operator}/{strategy.value} is broken: "
            + "; ".join(baseline))

    sites: List[Dict[str, object]] = []
    for site in sorted(recording.faults.hits):
        count = recording.faults.hits[site]
        hit_at = (count + 1) // 2
        plan = FaultPlan().arm(site, CrashFault(), hit=hit_at)
        run = ScenarioRun(operator, strategy, FaultInjector(plan))
        entry: Dict[str, object] = {
            "site": site,
            "layer": SITE_REGISTRY[site][0],
            "hits": count,
            "crash_at_hit": hit_at,
        }
        try:
            run.execute()
            entry["outcome"] = "not_hit"
            entry["detail"] = ["armed crash fault never fired"]
        except SimulatedCrashError:
            run.log.faults = NULL_FAULTS  # the log survives the crash
            recovered = restart(run.log)
            problems = check_recovered(run, recovered)
            entry["outcome"] = "ok" if not problems else "violation"
            entry["detail"] = problems
        except Exception as exc:  # noqa: BLE001 - report, don't die
            entry["outcome"] = "error"
            entry["detail"] = [repr(exc)]
        sites.append(entry)

    bad = [s for s in sites if s["outcome"] != "ok"]
    return {
        "operator": operator,
        "strategy": strategy.value,
        "sites": sites,
        "site_count": len(sites),
        "violations": len(bad),
    }


def run_sweep(operators: Sequence[str] = SCENARIO_OPERATORS,
              strategies: Sequence[SyncStrategy] = ALL_STRATEGIES
              ) -> Dict[str, object]:
    """Full sweep: every operator x strategy x crossed site."""
    combos = [sweep(op, strategy)
              for op in operators for strategy in strategies]
    covered = sorted({s["site"] for c in combos for s in c["sites"]})
    layers: Dict[str, int] = {}
    for site in covered:
        layer = SITE_REGISTRY[site][0]
        layers[layer] = layers.get(layer, 0) + 1
    return {
        "combos": combos,
        "summary": {
            "registered_sites": len(SITE_REGISTRY),
            "covered_sites": len(covered),
            "covered": covered,
            "layers": layers,
            "crash_runs": sum(c["site_count"] for c in combos),
            "violations": sum(c["violations"] for c in combos),
        },
    }
