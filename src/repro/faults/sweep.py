"""Crash-at-every-step sweep over the registered injection sites.

The harness runs a deterministic concurrent-workload scenario (bulk load,
interleaved user transactions, a long-lived "old" transaction, an aborted
transaction and post-swap probes) around one online transformation --
full outer join, split, or one of the migration-plan corpus operators
(explode, horizontal partition/merge, retype) -- under one
synchronization strategy.  A first
*recording* pass executes the scenario fault-free and counts how often
each registered injection site is crossed.  The sweep then re-runs the
identical scenario once per crossed site with a :class:`CrashFault` armed
mid-scenario, catches the :class:`SimulatedCrashError`, abandons all
volatile state (the simulated kill of Section 6) and reruns ARIES
:func:`~repro.engine.recovery.restart` -- on the log *salvaged from the
simulated disk*, never on the pre-crash in-memory record list.  Every
scenario writes through a :class:`~repro.wal.durable.SimulatedDisk`, so
the crash sweep exercises the real durability boundary: what survives is
exactly the flushed, frame-checksummed prefix.

After every recovery the harness asserts the paper's crash invariants:

* committed-and-flushed user data is preserved -- the oracle derives the
  surviving transaction set from the commit records present in the
  salvaged log (a commit whose record was deferred by a group-commit
  :class:`~repro.wal.log.FlushPolicy` and never flushed may legitimately
  have vanished), sources match that state before the swap, published
  tables match the relational operator applied to it after the swap;
* the salvaged prefix is byte-for-byte identical to re-encoding the
  salvaged records, and a plain crash (no disk fault) never leaves a
  torn or corrupt tail -- staged-but-unsynced bytes simply do not count;
* transient transformation targets are discarded (crash before the
  :class:`~repro.wal.records.TransformSwapRecord` reached the disk) or
  deterministically rebuilt (crash after it), cf. Section 6 "no actions
  performed by the transformation need to be repeated [after the swap]";
* loser transactions -- including transactions doomed by a non-blocking
  synchronization and transactions whose commit record was lost with the
  unflushed tail -- are rolled back to completion;
* no latches, table blocks or propagated proxy locks leak into the
  recovered database: a fresh probe transaction can write to every
  visible table.

The expected catalog is likewise derived from the salvaged log (DDL
replay mirroring recovery's redo pass): a ``CREATE TABLE`` whose record
never reached the disk must not resurface after recovery.

``workload_seed`` appends seeded random mutations to the scripted
workload, so harnesses (the chaos layer, the soak benchmark) can sweep
randomized FOJ/split/lazy workloads that are still perfectly
reproducible from the seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import LogCorruptionError, SimulatedCrashError
from repro.engine.database import Database, Transaction
from repro.engine.recovery import restart
from repro.faults.injection import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    SITE_REGISTRY,
)
from repro.relational.operators import (
    explode,
    full_outer_join,
    normalize_rows,
    retype,
    rows_equal,
    split,
)
from repro.relational.spec import ExplodeSpec, FojSpec, RetypeSpec, SplitSpec
from repro.storage.schema import TableSchema
from repro.transform.analysis import RemainingRecordsPolicy
from repro.transform.base import Phase, SyncStrategy, Transformation
from repro.transform.explode import ExplodeTransformation
from repro.transform.foj import FojTransformation
from repro.transform.options import TransformOptions
from repro.transform.partition import (
    AttrPredicate,
    MergeSpec,
    MergeTransformation,
    PartitionSpec,
    PartitionTransformation,
    merge_rows,
    partition_rows,
)
from repro.transform.retype import RetypeTransformation
from repro.transform.split import SplitTransformation
from repro.wal.durable import SimulatedDisk
from repro.wal.frames import SEGMENT_HEADER, encode_frame
from repro.wal.log import IMMEDIATE_FLUSH, FlushPolicy, LogManager
from repro.wal.records import (
    BeginRecord,
    CommitRecord,
    CreateTableRecord,
    DropTableRecord,
    EndRecord,
    RenameTableRecord,
    TransformRetireRecord,
    TransformSwapRecord,
)

RowDict = Dict[str, object]

#: Operators the sweep exercises (FOJ and split, Sections 4 and 5).
#: ``name@N`` runs the same scenario through an N-way sharded pipeline
#: (:mod:`repro.shard`), adding the shard-scoped crash sites -- partial
#: population, mid-window shard crashes, barrier and merge crashes -- to
#: the sweep's coverage.  ``name:lazy`` runs the scenario with
#: access-triggered population (``population_mode="lazy"``), interleaving
#: user reads with small sweep steps so both migrate-on-read crash sites
#: (``lazy.miss.transform``, ``lazy.sweep.chunk``) are crossed; the two
#: notations compose (``split:lazy@3``).
SCENARIO_OPERATORS: Tuple[str, ...] = (
    "foj", "split", "foj@2", "split@3", "foj:lazy", "split:lazy@3")

#: The migration-plan corpus operators (explode, horizontal partition
#: and merge, column retype), swept with the same notations.  The
#: partition and merge engines are eager-only, so only explode and
#: retype carry ``:lazy`` variants.
CORPUS_OPERATORS: Tuple[str, ...] = (
    "explode", "partition", "merge", "retype",
    "explode:lazy@2", "retype:lazy")

#: Every operator the sweep knows how to script.
ALL_OPERATORS: Tuple[str, ...] = SCENARIO_OPERATORS + CORPUS_OPERATORS

_OPERATOR_BASES = ("foj", "split", "explode", "partition", "merge",
                   "retype")
_EAGER_ONLY_BASES = ("partition", "merge")

#: The paper's three synchronization strategies (Section 3.4) plus the
#: MVCC version flip (snapshot storage, no latched window anywhere).
ALL_STRATEGIES: Tuple[SyncStrategy, ...] = (
    SyncStrategy.BLOCKING_COMMIT,
    SyncStrategy.NONBLOCKING_ABORT,
    SyncStrategy.NONBLOCKING_COMMIT,
    SyncStrategy.VERSION_FLIP,
)

_STEP_BUDGET = 24
_MAX_STEPS = 3000


# ---------------------------------------------------------------------------
# Durability-aware shadow oracle
# ---------------------------------------------------------------------------


class _Shadow:
    """Buffered workload script, resolved against a surviving log.

    Every operation is recorded per transaction and kept forever; nothing
    is applied eagerly.  The committed state is *derived* on demand by
    :meth:`resolve`: a transaction counts iff its commit record is present
    in the given log, and transactions apply in commit-record (LSN) order.
    The same buffered script therefore yields the right answer for the
    fault-free run (every commit is in the log) and for durable salvage
    (a group-commit-deferred commit whose record never reached the disk
    has legitimately vanished, and so has every operation it buffered).
    """

    def __init__(self) -> None:
        self.ops: Dict[int, List[Tuple]] = {}

    def begin(self, txn_id: int) -> None:
        self.ops.setdefault(txn_id, [])

    def insert(self, txn_id: int, table: str, key: Tuple,
               values: RowDict) -> None:
        self.ops.setdefault(txn_id, []).append(
            ("i", table, key, dict(values)))

    def update(self, txn_id: int, table: str, key: Tuple,
               changes: RowDict) -> None:
        self.ops.setdefault(txn_id, []).append(
            ("u", table, key, dict(changes)))

    def delete(self, txn_id: int, table: str, key: Tuple) -> None:
        self.ops.setdefault(txn_id, []).append(("d", table, key, None))

    def resolve(self, log: LogManager) -> Dict[str, Dict[Tuple, RowDict]]:
        """Committed state per table, as the surviving ``log`` defines it.

        The commit sequence is read off the log's commit records -- LSN
        order is commit order.  Because the flushed log is always an LSN
        prefix, a transaction that reads another's writes can only be in
        the salvaged log if its dependency is too.
        """
        tables: Dict[str, Dict[Tuple, RowDict]] = {}
        for record in log.scan():
            if not isinstance(record, CommitRecord):
                continue
            for op, table, key, payload in self.ops.get(record.txn_id, ()):
                rows = tables.setdefault(table, {})
                if op == "i":
                    rows[key] = dict(payload)
                elif op == "u":
                    rows[key].update(payload)
                else:
                    del rows[key]
        return tables


def _visible_tables(log: LogManager) -> Set[str]:
    """Tables recovery will leave visible, by DDL replay of ``log``.

    Mirrors the redo pass of :func:`~repro.engine.recovery.restart`:
    transient creates are discarded, renames follow the transient flag,
    a swap (of a never-retired transformation) retires its sources --
    zombies are dropped at the end of recovery -- and publishes its
    targets.
    """
    retired_ids = {record.transform_id for record in log.scan()
                   if isinstance(record, TransformRetireRecord)}
    transient: Set[str] = set()
    visible: Set[str] = set()
    for record in log.scan():
        if isinstance(record, CreateTableRecord):
            if record.transient:
                transient.add(record.schema.name)
            else:
                visible.add(record.schema.name)
        elif isinstance(record, DropTableRecord):
            if record.table in transient:
                transient.discard(record.table)
            else:
                visible.discard(record.table)
        elif isinstance(record, RenameTableRecord):
            if record.old_name in transient:
                transient.discard(record.old_name)
                transient.add(record.new_name)
            else:
                visible.discard(record.old_name)
                visible.add(record.new_name)
        elif isinstance(record, TransformSwapRecord) and \
                record.transform_id not in retired_ids:
            visible.difference_update(record.retired)
            for name in record.published:
                transient.discard(name)
                visible.add(name)
    return visible


# ---------------------------------------------------------------------------
# The scenario
# ---------------------------------------------------------------------------


class ScenarioRun:
    """One deterministic execution of the sweep workload.

    The same script runs for the recording pass and for every armed pass;
    an armed :class:`CrashFault` leaves the prefix bit-identical, so site
    crossing counts from the recording pass predict exactly where each
    armed pass dies.  The log writes through a fresh
    :class:`SimulatedDisk` under ``flush_policy`` (immediate by default);
    ``workload_seed`` appends seeded random mutations to the script.
    """

    def __init__(self, operator: str, strategy: SyncStrategy,
                 faults: Optional[FaultInjector] = None,
                 flush_policy: Optional[FlushPolicy] = None,
                 workload_seed: Optional[int] = None,
                 metrics=None) -> None:
        base, _, shard_suffix = operator.partition("@")
        shards = int(shard_suffix) if shard_suffix else 1
        base, _, mode = base.partition(":")
        mode = mode or "eager"
        if base not in _OPERATOR_BASES or shards < 1 or \
                mode not in ("eager", "lazy"):
            raise ValueError(f"unknown sweep operator {operator!r}")
        if mode == "lazy" and base in _EAGER_ONLY_BASES:
            raise ValueError(
                f"operator {base!r} is eager-only; {operator!r} cannot "
                "run with lazy population")
        self.operator = operator
        self.operator_base = base
        self.shards = shards
        self.population_mode = mode
        self.strategy = strategy
        self.flush_policy = flush_policy if flush_policy is not None \
            else IMMEDIATE_FLUSH
        self.workload_seed = workload_seed
        self.faults = faults if faults is not None else FaultInjector()
        self.disk = SimulatedDisk()
        self.log = LogManager(disk=self.disk,
                              flush_policy=self.flush_policy)
        # An observed run (chaos postmortems, interference probes) passes
        # a Metrics registry; the stock sweep stays on the null registry.
        self.db = Database(log=self.log, metrics=metrics)
        self.db.attach_faults(self.faults)
        self.shadow = _Shadow()
        self.tf: Optional[Transformation] = None
        self.spec = None
        self.source_names: Tuple[str, ...] = ()
        self.published_names: Tuple[str, ...] = ()
        self._mutations: List[Callable[[], None]] = []
        self._l_txn: Optional[Transaction] = None
        self._l_op: Optional[Tuple] = None
        self._l_zombie_op: Optional[Tuple] = None
        self._lazy_reads: List[Tuple[str, Tuple]] = []
        self._probes: List[Tuple[str, RowDict]] = []

    def _tf_options(self) -> TransformOptions:
        return TransformOptions(
            sync=self.strategy, storage=self._storage(),
            policy=RemainingRecordsPolicy(max_remaining=2, patience=200),
            population_chunk=4, shards=self.shards,
            population_mode=self.population_mode)

    def _storage(self) -> str:
        """Storage backend matching the strategy (version flip needs MVCC)."""
        return "mvcc" if self.strategy is SyncStrategy.VERSION_FLIP \
            else "latch"

    # -- committed-state bookkeeping ------------------------------------

    def _apply(self, txn: Transaction, op: Tuple) -> None:
        kind, table_name = op[0], op[1]
        schema = self.db.catalog.get_any(table_name).schema
        if kind == "i":
            values = schema.normalize(op[2])
            self.db.insert(txn, table_name, values)
            self.shadow.insert(txn.txn_id, table_name,
                               schema.key_of(values), values)
        elif kind == "u":
            key, changes = tuple(op[2]), op[3]
            self.db.update(txn, table_name, key, changes)
            self.shadow.update(txn.txn_id, table_name, key, changes)
        elif kind == "d":
            key = tuple(op[2])
            self.db.delete(txn, table_name, key)
            self.shadow.delete(txn.txn_id, table_name, key)
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown op kind {kind!r}")

    def _txn_do(self, ops: Sequence[Tuple], abort: bool = False) -> None:
        txn = self.db.begin()
        self.shadow.begin(txn.txn_id)
        for op in ops:
            self._apply(txn, op)
        if abort:
            self.db.abort(txn)
        else:
            self.db.commit(txn)

    # -- scenario scripts ------------------------------------------------

    def _setup_foj(self) -> None:
        self.db.create_table(
            TableSchema("R", ["a", "b", "c"], primary_key=["a"]))
        self.db.create_table(
            TableSchema("S", ["c", "d", "e"], primary_key=["c"]))
        self.spec = FojSpec.derive(
            self.db.table("R").schema, self.db.table("S").schema,
            target_name="T", join_attr_r="c", join_attr_s="c")
        # Names before the bulk load: an armed crash can fire inside the
        # load, and the recovery checks need to know what to expect.
        self.source_names = ("R", "S")
        self.published_names = ("T",)
        self._txn_do(
            [("i", "R", {"a": i, "b": f"b{i}", "c": i % 5})
             for i in range(10)] +
            [("i", "S", {"c": c, "d": f"d{c}", "e": f"e{c}"})
             for c in range(4)])
        self.tf = FojTransformation(
            self.db, self.spec, options=self._tf_options())
        self._l_op = ("u", "R", (0,), {"b": "L0"})
        self._l_zombie_op = ("u", "R", (0,), {"b": "Lz"})
        self._lazy_reads = [("R", (1,)), ("R", (4,)), ("R", (7,)),
                            ("S", (2,))]
        self._mutations = [
            # The S update first: it lands while log propagation is still
            # running, which in the sharded pipeline makes it a barrier
            # record (S rows fan out across every shard's carriers).
            lambda: self._txn_do([("u", "S", (1,), {"d": "dX"})]),
            lambda: self._txn_do(
                [("i", "R", {"a": 20, "b": "b20", "c": 2})]),
            lambda: self._txn_do([("d", "R", (5,))]),
            lambda: self._txn_do([("u", "R", (2,), {"b": "mX"})],
                                 abort=True),
            lambda: self._txn_do(
                [("i", "S", {"c": 9, "d": "d9", "e": "e9"})]),
            lambda: self._txn_do([("u", "R", (3,), {"b": "bX"})]),
            lambda: self._txn_do(
                [("i", "R", {"a": 21, "b": "b21", "c": 9})]),
        ]
        self._probes = [("T", {"a": 95001, "b": "probe", "c": 95001})]

    def _setup_split(self) -> None:
        self.db.create_table(TableSchema(
            "T", ["id", "name", "zip", "city"], primary_key=["id"]))
        self.spec = SplitSpec.derive(
            self.db.table("T").schema, r_name="T_r", s_name="postal",
            split_attr="zip", s_attrs=["city"])
        # Names before the bulk load (see _setup_foj).
        self.source_names = ("T",)
        self.published_names = ("T_r", "postal")
        rows = []
        for i in range(9):
            z = 7000 + (i % 3)
            rows.append(("i", "T", {"id": i, "name": f"n{i}", "zip": z,
                                    "city": f"C{z}"}))
        rows.append(("i", "T", {"id": 9, "name": "n9", "zip": 7009,
                                "city": "C7009"}))
        self._txn_do(rows)
        self.tf = SplitTransformation(
            self.db, self.spec, check_consistency=True,
            on_inconsistent="wait", options=self._tf_options())
        self._l_op = ("u", "T", (1,), {"name": "Ln"})
        self._l_zombie_op = ("u", "T", (1,), {"name": "Lz"})
        self._lazy_reads = [("T", (2,)), ("T", (5,)), ("T", (8,))]
        self._mutations = [
            lambda: self._txn_do(
                [("i", "T", {"id": 20, "name": "n20", "zip": 7001,
                             "city": "C7001"})]),
            # Touch every contributor of zip 7000 in one transaction: each
            # update U-flags the S record (counter > 1), the consistency
            # checker later finds the contributors agreeing on "CX".
            lambda: self._txn_do([
                ("u", "T", (0,), {"city": "CX"}),
                ("u", "T", (3,), {"city": "CX"}),
                ("u", "T", (6,), {"city": "CX"}),
            ]),
            lambda: self._txn_do([("d", "T", (4,))]),
            lambda: self._txn_do([("u", "T", (2,), {"name": "mX"})],
                                 abort=True),
            lambda: self._txn_do([("u", "T", (9,), {"name": "nX"})]),
            lambda: self._txn_do(
                [("i", "T", {"id": 21, "name": "n21", "zip": 7021,
                             "city": "C7021"})]),
        ]
        self._probes = [
            ("T_r", {"id": 95001, "name": "probe", "zip": 95001}),
            ("postal", {"zip": 95002, "city": "probe"}),
        ]

    def _setup_explode(self) -> None:
        self.db.create_table(TableSchema(
            "doc", ["id", "title", "tags"], primary_key=["id"]))
        self.spec = ExplodeSpec.derive(
            self.db.table("doc").schema, target_name="doc_tag",
            list_attr="tags", value_attr="tag")
        # Names before the bulk load (see _setup_foj).
        self.source_names = ("doc",)
        self.published_names = ("doc_tag",)
        tags = ["x,y", "y", None, "x,z,w", "z", "x,y", None, "w,q",
                "q", "x"]
        self._txn_do(
            [("i", "doc", {"id": i, "title": f"t{i}", "tags": tags[i]})
             for i in range(10)])
        self.tf = ExplodeTransformation(
            self.db, self.spec, options=self._tf_options())
        self._l_op = ("u", "doc", (0,), {"title": "L0"})
        self._l_zombie_op = ("u", "doc", (0,), {"title": "Lz"})
        self._lazy_reads = [("doc", (1,)), ("doc", (4,)), ("doc", (7,))]
        self._mutations = [
            # Sibling-group reconcile: one element survives (y), one
            # vanishes (x), one appears (v).
            lambda: self._txn_do([("u", "doc", (5,), {"tags": "y,v"})]),
            lambda: self._txn_do(
                [("i", "doc", {"id": 20, "title": "t20",
                               "tags": "q,x"})]),
            lambda: self._txn_do([("d", "doc", (3,))]),
            lambda: self._txn_do([("u", "doc", (2,), {"title": "mX"})],
                                 abort=True),
            # Kept-attribute change fanned out to all children.
            lambda: self._txn_do([("u", "doc", (7,), {"title": "tX"})]),
            # NULL list rewritten to elements, and vice versa.
            lambda: self._txn_do([("u", "doc", (6,), {"tags": "n1,n2"})]),
            lambda: self._txn_do([("u", "doc", (8,), {"tags": None})]),
        ]
        self._probes = [
            ("doc_tag", {"id": 95001, "title": "probe", "tag": "p"})]

    def _setup_partition(self) -> None:
        self.db.create_table(TableSchema(
            "orders", ["id", "region", "qty"], primary_key=["id"]))
        self.spec = PartitionSpec(
            "orders", "orders_eu", "orders_row",
            predicate=AttrPredicate("region", "==", "eu"))
        # Names before the bulk load (see _setup_foj).
        self.source_names = ("orders",)
        self.published_names = ("orders_eu", "orders_row")
        regions = ["eu", "us", "eu", "ap", "eu", "us", "ap", "eu",
                   "us", "eu"]
        self._txn_do(
            [("i", "orders", {"id": i, "region": regions[i], "qty": i})
             for i in range(10)])
        self.tf = PartitionTransformation(
            self.db, self.spec, options=self._tf_options())
        self._l_op = ("u", "orders", (0,), {"qty": 100})
        self._l_zombie_op = ("u", "orders", (0,), {"qty": 101})
        self._lazy_reads = []
        self._mutations = [
            # Predicate verdict flips: the row moves between sides.
            lambda: self._txn_do([("u", "orders", (1,),
                                   {"region": "eu"})]),
            lambda: self._txn_do(
                [("i", "orders", {"id": 20, "region": "eu",
                                  "qty": 20})]),
            lambda: self._txn_do([("d", "orders", (3,))]),
            lambda: self._txn_do([("u", "orders", (5,), {"qty": 55})],
                                 abort=True),
            lambda: self._txn_do([("u", "orders", (2,),
                                   {"region": "us"})]),
            lambda: self._txn_do(
                [("i", "orders", {"id": 21, "region": "ap",
                                  "qty": 21})]),
        ]
        self._probes = [
            ("orders_eu", {"id": 95001, "region": "eu", "qty": 1}),
            ("orders_row", {"id": 95002, "region": "us", "qty": 2}),
        ]

    def _setup_merge(self) -> None:
        self.db.create_table(TableSchema(
            "evt_a", ["id", "payload"], primary_key=["id"]))
        self.db.create_table(TableSchema(
            "evt_b", ["id", "payload"], primary_key=["id"]))
        self.spec = MergeSpec("evt_a", "evt_b", "evt")
        # Names before the bulk load (see _setup_foj).
        self.source_names = ("evt_a", "evt_b")
        self.published_names = ("evt",)
        self._txn_do(
            [("i", "evt_a", {"id": i, "payload": f"a{i}"})
             for i in range(0, 10, 2)] +
            [("i", "evt_b", {"id": i, "payload": f"b{i}"})
             for i in range(1, 10, 2)])
        self.tf = MergeTransformation(
            self.db, self.spec, options=self._tf_options())
        self._l_op = ("u", "evt_a", (0,), {"payload": "L0"})
        self._l_zombie_op = ("u", "evt_a", (0,), {"payload": "Lz"})
        self._lazy_reads = []
        self._mutations = [
            lambda: self._txn_do([("u", "evt_b", (1,),
                                   {"payload": "bX"})]),
            lambda: self._txn_do(
                [("i", "evt_a", {"id": 20, "payload": "a20"})]),
            lambda: self._txn_do([("d", "evt_b", (3,))]),
            lambda: self._txn_do([("u", "evt_a", (2,),
                                   {"payload": "mX"})], abort=True),
            lambda: self._txn_do(
                [("i", "evt_b", {"id": 21, "payload": "b21"})]),
            lambda: self._txn_do([("d", "evt_a", (4,))]),
        ]
        self._probes = [("evt", {"id": 95001, "payload": "probe"})]

    def _setup_retype(self) -> None:
        self.db.create_table(TableSchema(
            "reading", ["rid", "label", "value"], primary_key=["rid"]))
        self.spec = RetypeSpec.derive(
            self.db.table("reading").schema, target_name="reading_v2",
            attr="value", cast="int", default=0)
        # Names before the bulk load (see _setup_foj).
        self.source_names = ("reading",)
        self.published_names = ("reading_v2",)
        values = ["3", "14", None, "-7", "0", None, "8", "21", "5", "9"]
        self._txn_do(
            [("i", "reading", {"rid": i, "label": f"l{i}",
                               "value": values[i]})
             for i in range(10)])
        self.tf = RetypeTransformation(
            self.db, self.spec, options=self._tf_options())
        self._l_op = ("u", "reading", (0,), {"label": "L0"})
        self._l_zombie_op = ("u", "reading", (0,), {"label": "Lz"})
        self._lazy_reads = [("reading", (1,)), ("reading", (4,)),
                            ("reading", (7,))]
        self._mutations = [
            # Retyped-column change: the rule must cast it in flight.
            lambda: self._txn_do([("u", "reading", (1,),
                                   {"value": "41"})]),
            lambda: self._txn_do(
                [("i", "reading", {"rid": 20, "label": "l20",
                                   "value": "99"})]),
            lambda: self._txn_do([("d", "reading", (3,))]),
            lambda: self._txn_do([("u", "reading", (2,),
                                   {"label": "mX"})], abort=True),
            lambda: self._txn_do([("u", "reading", (6,),
                                   {"value": None})]),
            lambda: self._txn_do(
                [("i", "reading", {"rid": 21, "label": "l21",
                                   "value": None})]),
        ]
        self._probes = [
            ("reading_v2", {"rid": 95001, "label": "probe",
                            "value": 95001})]

    def _random_mutations(self) -> List[Callable[[], None]]:
        """Seeded extra mutations appended to the scripted workload.

        Inserts use a key range (100+) disjoint from the script; updates
        touch the name-like attribute of keys the script never deletes
        and the long-lived transaction never locks (and, for split, never
        the shared ``city`` attribute, which would wedge the consistency
        checker's wait loop); deletes only remove rows this generator
        itself committed.
        """
        if self.workload_seed is None:
            return []
        rng = random.Random(self.workload_seed)
        if self.operator_base == "foj":
            table, text_attr = "R", "b"
            safe_keys = (1, 2, 3, 4, 6, 7, 8)

            def new_row(i: int) -> RowDict:
                return {"a": 100 + i, "b": f"r{i}",
                        "c": rng.randint(0, 9)}
        elif self.operator_base == "split":
            table, text_attr = "T", "name"
            safe_keys = (0, 2, 3, 5, 6, 7, 8)

            def new_row(i: int) -> RowDict:
                z = 7100 + rng.randint(0, 3)
                return {"id": 100 + i, "name": f"r{i}", "zip": z,
                        "city": f"C{z}"}
        elif self.operator_base == "explode":
            table, text_attr = "doc", "title"
            safe_keys = (1, 2, 4, 5, 6, 7, 8, 9)

            def new_row(i: int) -> RowDict:
                tags = rng.choice(["x", "x,y", None, "p,q", "y,z,w"])
                return {"id": 100 + i, "title": f"r{i}", "tags": tags}
        elif self.operator_base == "partition":
            table, text_attr = "orders", "qty"
            safe_keys = (1, 2, 4, 6, 7, 8, 9)

            def new_row(i: int) -> RowDict:
                return {"id": 100 + i,
                        "region": rng.choice(["eu", "us", "ap"]),
                        "qty": i}
        elif self.operator_base == "merge":
            table, text_attr = "evt_a", "payload"
            safe_keys = (2, 6, 8)

            def new_row(i: int) -> RowDict:
                return {"id": 100 + i, "payload": f"r{i}"}
        else:
            table, text_attr = "reading", "label"
            safe_keys = (1, 2, 4, 5, 6, 7, 8, 9)

            def new_row(i: int) -> RowDict:
                return {"rid": 100 + i, "label": f"r{i}",
                        "value": str(rng.randint(0, 99))}

        mutations: List[Callable[[], None]] = []
        own_keys: List[int] = []
        for i in range(rng.randint(2, 6)):
            choice = rng.random()
            if choice < 0.45 or not own_keys:
                row = new_row(i)
                abort = rng.random() < 0.2
                if not abort:
                    own_keys.append(100 + i)
                mutations.append(
                    lambda row=row, abort=abort: self._txn_do(
                        [("i", table, row)], abort=abort))
            elif choice < 0.8:
                key = (rng.choice(safe_keys),)
                mutations.append(
                    lambda key=key, i=i: self._txn_do(
                        [("u", table, key, {text_attr: f"z{i}"})]))
            else:
                key = (own_keys.pop(0),)
                mutations.append(
                    lambda key=key: self._txn_do([("d", table, key)]))
        return mutations

    def _abort_episode(self) -> None:
        """Start a throwaway transformation, then abort it.

        Crosses ``tf.abort`` and the zero-residue cleanup behind it
        (target drops, unlatching, proxy-lock release), so the crash
        matrix also proves an *aborted* transformation is recoverable:
        a kill inside the cleanup must restore exactly the committed
        source state, with the transient target discarded.
        """
        self.db.create_table(
            TableSchema("A", ["k", "v"], primary_key=["k"]))
        self.db.create_table(
            TableSchema("B", ["v", "w"], primary_key=["v"]))
        self._txn_do(
            [("i", "A", {"k": i, "v": i % 2}) for i in range(3)] +
            [("i", "B", {"v": 0, "w": "w0"})])
        spec = FojSpec.derive(
            self.db.table("A").schema, self.db.table("B").schema,
            target_name="AB", join_attr_r="v", join_attr_s="v")
        throwaway = FojTransformation(
            self.db, spec,
            options=TransformOptions(sync=self.strategy,
                                     storage=self._storage(),
                                     population_chunk=2))
        throwaway.step(1)
        throwaway.abort()

    # -- driving ---------------------------------------------------------

    def execute(self) -> None:
        """Run the full scenario; raises :class:`SimulatedCrashError`
        when an armed crash fault fires."""
        setup = {
            "foj": self._setup_foj,
            "split": self._setup_split,
            "explode": self._setup_explode,
            "partition": self._setup_partition,
            "merge": self._setup_merge,
            "retype": self._setup_retype,
        }
        setup[self.operator_base]()
        self._abort_episode()
        self._mutations.extend(self._random_mutations())

        # The long-lived transaction the synchronization strategies
        # disagree about: drained (blocking commit), doomed (non-blocking
        # abort) or carried across the swap (non-blocking commit).
        self._l_txn = self.db.begin()
        self.shadow.begin(self._l_txn.txn_id)
        self._apply(self._l_txn, self._l_op)

        if self.population_mode == "lazy":
            # One deliberately tiny first step keeps POPULATING open
            # (the coordinator multiplies the budget by the shard count,
            # so even budget 1 sweeps a few rows), and the interleaved
            # reads then hit not-yet-migrated source records, crossing
            # the migrate-on-read crash sites.
            self.tf.step(1)
            txn = self.db.begin()
            for table_name, key in self._lazy_reads:
                self.db.read(txn, table_name, key)
            self.db.commit(txn)

        mutations = list(self._mutations)
        l_active = True
        for _ in range(_MAX_STEPS):
            report = self.tf.step(_STEP_BUDGET)
            if l_active and (self._l_txn.doomed or
                             self._l_txn.is_finished):
                # Non-blocking abort doomed and rolled back L.
                l_active = False
            if report.done:
                break
            if mutations and self.tf.phase in (Phase.POPULATING,
                                               Phase.PROPAGATING):
                mutations.pop(0)()
            if l_active and self.strategy is SyncStrategy.BLOCKING_COMMIT \
                    and self.tf.phase is Phase.SYNCHRONIZING:
                # Let the drain finish: commit L.
                self.db.commit(self._l_txn)
                l_active = False
            if l_active and self.strategy in (
                    SyncStrategy.NONBLOCKING_COMMIT,
                    SyncStrategy.VERSION_FLIP) \
                    and self.tf.phase is Phase.BACKGROUND:
                # L lives on as an old transaction: one more write through
                # the zombie namespace (non-blocking commit) or its pinned
                # pre-flip epoch (version flip), then commit (ends the
                # mirror).
                self._apply(self._l_txn, self._l_zombie_op)
                self.db.commit(self._l_txn)
                l_active = False
        else:
            raise AssertionError(
                f"scenario did not finish within {_MAX_STEPS} steps "
                f"({self.operator}/{self.strategy.value}, "
                f"phase {self.tf.phase.value})")

        # Post-swap probes: plain user transactions against the published
        # schema (their redo must land in recovery's rebuilt tables).
        for table_name, values in self._probes:
            self._txn_do([("i", table_name, values)])

    # -- expectations ----------------------------------------------------

    def expected_tables(self, log: LogManager) -> Dict[str, List[RowDict]]:
        """State the database must show, derived from the surviving log.

        The committed transaction set, the visible catalog and the swap
        point all come from ``log`` -- for a fault-free run that is the
        full log, after a crash it is the salvaged flushed prefix.
        Before the swap the expectation is simply the resolved sources;
        after it, the relational operator applied to the resolved sources
        plus any rows committed directly into the published tables
        (probes).
        """
        state = self.shadow.resolve(log)

        def rows(name: str) -> List[RowDict]:
            return [dict(v) for v in state.get(name, {}).values()]

        visible = _visible_tables(log)
        swapped = any(isinstance(r, TransformSwapRecord)
                      for r in log.scan())
        if not swapped:
            return {name: rows(name) for name in visible}
        if self.operator_base == "foj":
            base = {"T": full_outer_join(self.spec, rows("R"), rows("S"))}
        elif self.operator_base == "split":
            r_rows, s_rows, _, _ = split(self.spec, rows("T"),
                                         strict=False)
            base = {"T_r": r_rows, "postal": s_rows}
        elif self.operator_base == "explode":
            base = {"doc_tag": explode(self.spec, rows("doc"))}
        elif self.operator_base == "partition":
            a_rows, b_rows = partition_rows(self.spec, rows("orders"))
            base = {"orders_eu": a_rows, "orders_row": b_rows}
        elif self.operator_base == "merge":
            base = {"evt": merge_rows(
                rows("evt_a"), rows("evt_b"),
                lambda values: (values["id"],))}
        else:
            base = {"reading_v2": retype(self.spec, rows("reading"))}
        expected: Dict[str, List[RowDict]] = {}
        for name in visible:
            if name in self.published_names:
                expected[name] = list(base.get(name, [])) + rows(name)
            else:
                expected[name] = rows(name)
        return expected


# ---------------------------------------------------------------------------
# Invariant checks
# ---------------------------------------------------------------------------


def _table_values(db: Database, name: str) -> List[RowDict]:
    return [dict(r.values) for r in db.catalog.get_any(name).scan()]


def _diff(name: str, actual: List[RowDict],
          expected: List[RowDict]) -> Optional[str]:
    if rows_equal(actual, expected):
        return None
    return (f"table {name!r} diverged from committed state: "
            f"actual={normalize_rows(actual)!r} "
            f"expected={normalize_rows(expected)!r}")


def _check_data(run: ScenarioRun, db: Database, log: LogManager,
                violations: List[str]) -> None:
    expected = run.expected_tables(log)
    names = sorted(db.catalog.table_names())
    if names != sorted(expected):
        violations.append(
            f"catalog mismatch: visible tables {names} != "
            f"expected {sorted(expected)}")
        return
    for name, rows in expected.items():
        problem = _diff(name, _table_values(db, name), rows)
        if problem:
            violations.append(problem)


def _probe_writes(db: Database, violations: List[str]) -> None:
    """A fresh transaction must be able to write every visible table
    (no leaked latch, block or proxy lock) and roll back cleanly."""
    for salt, name in enumerate(sorted(db.catalog.table_names())):
        schema = db.catalog.get(name).schema
        values = {attr: 990000 + salt * 100 + i
                  for i, attr in enumerate(schema.attribute_names)}
        txn = db.begin()
        try:
            db.insert(txn, name, values)
            db.abort(txn)
        except Exception as exc:
            violations.append(
                f"probe write into recovered table {name!r} failed: "
                f"{exc!r}")
            if not txn.is_finished:
                try:
                    db.abort(txn)
                except Exception:
                    pass


def check_salvage(run: ScenarioRun, log: LogManager) -> List[str]:
    """Durability invariants of a salvage performed without disk faults.

    A plain process kill must leave a clean, frame-aligned prefix --
    staged-but-unsynced bytes are simply absent, never torn -- and
    re-encoding the salvaged records must reproduce the surviving bytes
    exactly (the flushed prefix survives byte-for-byte).
    """
    violations: List[str] = []
    salvage = log.salvage
    if salvage is None:
        return [f"recovered log has no salvage report"]
    if salvage.torn or salvage.tail_corrupt or salvage.dropped_bytes:
        violations.append(
            f"clean crash left a damaged log: {salvage.describe()}")
    reencoded = SEGMENT_HEADER + b"".join(
        encode_frame(record) for record in salvage.records)
    surviving = run.disk.crash_image()[:salvage.byte_length]
    if reencoded != surviving:
        violations.append(
            "salvaged prefix is not byte-identical under re-encode "
            f"({len(surviving)} bytes on disk, "
            f"{len(reencoded)} re-encoded)")
    return violations


def check_recovered(run: ScenarioRun, recovered: Database,
                    log: LogManager) -> List[str]:
    """All crash invariants on a freshly recovered database.

    ``log`` is the recovered database's log -- the salvaged flushed
    prefix plus whatever recovery itself appended (CLRs, end records).
    Every expectation is derived from it, never from the pre-crash
    in-memory state.
    """
    violations: List[str] = []
    begun = {r.txn_id for r in log.scan() if isinstance(r, BeginRecord)}
    ended = {r.txn_id for r in log.scan() if isinstance(r, EndRecord)}
    unfinished = sorted(begun - ended)
    if unfinished:
        violations.append(
            f"transactions {unfinished} have no end record after "
            "recovery (losers not rolled back)")
    if recovered.txns.active_txns():
        violations.append("active transactions survived recovery")
    if recovered.locks._latches:
        violations.append(
            f"latches leaked into recovery: {recovered.locks._latches}")
    blocked = [n for n in recovered.catalog.table_names()
               if recovered.catalog.is_blocked(n)]
    if blocked:
        violations.append(f"tables still blocked after recovery: {blocked}")
    if recovered.catalog.zombie_names():
        violations.append(
            f"zombie tables survived recovery: "
            f"{recovered.catalog.zombie_names()}")

    _check_data(run, recovered, log, violations)
    _probe_writes(recovered, violations)
    if not violations:
        # The probe transactions rolled back; state must be unchanged.
        _check_data(run, recovered, log, violations)
    return violations


def check_completed(run: ScenarioRun) -> List[str]:
    """Sanity checks on a fault-free (recording) scenario execution."""
    violations: List[str] = []
    db = run.db
    if db.txns.active_txns():
        violations.append(
            f"scenario left active transactions: "
            f"{sorted(t.txn_id for t in db.txns.active_txns())}")
    if db.locks._latches:
        violations.append(f"latches leaked: {db.locks._latches}")
    run.log.drain_flushes()
    if run.log.flushed_lsn != run.log.end_lsn:
        violations.append(
            f"drain left unflushed tail: flushed {run.log.flushed_lsn} "
            f"< end {run.log.end_lsn}")
    _check_data(run, db, run.log, violations)
    return violations


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


def sweep(operator: str, strategy: SyncStrategy,
          flush_policy: Optional[FlushPolicy] = None,
          workload_seed: Optional[int] = None) -> Dict[str, object]:
    """Crash at every crossed injection site for one scenario.

    Returns a JSON-able report: per-site outcome (``ok`` / ``violation``
    / ``error`` / ``not_hit``) plus the recording pass's crossing counts.
    Each armed pass crashes at the *middle* crossing of its site, placing
    the kill inside the interesting part of the scenario rather than at
    the very first crossing (often the bulk load).  Recovery always goes
    through the disk: the log is salvaged from the crash image, so only
    the flushed prefix survives -- under a coalescing ``flush_policy``
    that legitimately excludes deferred commits.
    """
    recording = ScenarioRun(operator, strategy,
                            FaultInjector(FaultPlan()),
                            flush_policy=flush_policy,
                            workload_seed=workload_seed)
    recording.execute()
    # Snapshot before the baseline check: its drain crosses flush/disk
    # sites one more time, and those post-scenario crossings are not
    # reachable by an armed pass (it crashes or completes, never drains).
    hits = dict(recording.faults.hits)
    baseline = check_completed(recording)
    if baseline:
        raise AssertionError(
            f"fault-free scenario {operator}/{strategy.value} is broken: "
            + "; ".join(baseline))

    sites: List[Dict[str, object]] = []
    for site in sorted(hits):
        count = hits[site]
        hit_at = (count + 1) // 2
        plan = FaultPlan().arm(site, CrashFault(), hit=hit_at)
        run = ScenarioRun(operator, strategy, FaultInjector(plan),
                          flush_policy=flush_policy,
                          workload_seed=workload_seed)
        entry: Dict[str, object] = {
            "site": site,
            "layer": SITE_REGISTRY[site][0],
            "hits": count,
            "crash_at_hit": hit_at,
        }
        try:
            run.execute()
            entry["outcome"] = "not_hit"
            entry["detail"] = ["armed crash fault never fired"]
        except SimulatedCrashError:
            try:
                salvaged = LogManager.from_disk(run.disk)
            except LogCorruptionError as exc:
                # No disk fault was armed: corruption means the write
                # path itself produced bad bytes.
                entry["outcome"] = "violation"
                entry["detail"] = [f"salvage quarantined a clean-crash "
                                   f"log: {exc}"]
                sites.append(entry)
                continue
            problems = check_salvage(run, salvaged)
            recovered = restart(salvaged)
            problems += check_recovered(run, recovered, salvaged)
            entry["outcome"] = "ok" if not problems else "violation"
            entry["detail"] = problems
        except Exception as exc:  # noqa: BLE001 - report, don't die
            entry["outcome"] = "error"
            entry["detail"] = [repr(exc)]
        sites.append(entry)

    bad = [s for s in sites if s["outcome"] != "ok"]
    return {
        "operator": operator,
        "strategy": strategy.value,
        "flush_policy": "immediate" if flush_policy is None
        or flush_policy.immediate else
        f"group({flush_policy.max_pending_requests},"
        f"{flush_policy.max_pending_records})",
        "workload_seed": workload_seed,
        "sites": sites,
        "site_count": len(sites),
        "violations": len(bad),
    }


def run_sweep(operators: Sequence[str] = ALL_OPERATORS,
              strategies: Sequence[SyncStrategy] = ALL_STRATEGIES
              ) -> Dict[str, object]:
    """Full sweep: every operator x strategy x crossed site.

    The summary reports per-layer coverage as registered-vs-fired
    counts and lists every registered site the whole sweep never
    crossed (``never_fired``) -- a site that exists but cannot be
    reached is dead crash-test surface and should fail loudly in the
    benchmark harness.
    """
    combos = [sweep(op, strategy)
              for op in operators for strategy in strategies]
    covered = sorted({s["site"] for c in combos for s in c["sites"]})
    never_fired = sorted(set(SITE_REGISTRY) - set(covered))
    layers: Dict[str, int] = {}
    for site in covered:
        layer = SITE_REGISTRY[site][0]
        layers[layer] = layers.get(layer, 0) + 1
    registered_layers: Dict[str, int] = {}
    for layer, _ in SITE_REGISTRY.values():
        registered_layers[layer] = registered_layers.get(layer, 0) + 1
    layer_coverage = {
        layer: {"registered": registered_layers[layer],
                "covered": layers.get(layer, 0)}
        for layer in sorted(registered_layers)}
    return {
        "combos": combos,
        "summary": {
            "registered_sites": len(SITE_REGISTRY),
            "covered_sites": len(covered),
            "covered": covered,
            "never_fired": never_fired,
            "layers": layers,
            "layer_coverage": layer_coverage,
            "crash_runs": sum(c["site_count"] for c in combos),
            "violations": sum(c["violations"] for c in combos),
        },
    }
