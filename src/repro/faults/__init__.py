"""Deterministic fault injection (``repro.faults``).

See :mod:`repro.faults.injection` for the model and
:mod:`repro.faults.sweep` for the crash-point sweep harness.
"""

from repro.faults.injection import (
    NULL_FAULTS,
    AbortFault,
    BitFlipFault,
    CrashFault,
    DelayFault,
    DiskFault,
    Fault,
    FaultInjector,
    FaultPlan,
    LostFlushFault,
    SITE_REGISTRY,
    TornWriteFault,
    register_site,
    sites_by_layer,
)

__all__ = [
    "NULL_FAULTS",
    "AbortFault",
    "BitFlipFault",
    "CrashFault",
    "DelayFault",
    "DiskFault",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "LostFlushFault",
    "SITE_REGISTRY",
    "TornWriteFault",
    "register_site",
    "sites_by_layer",
]
