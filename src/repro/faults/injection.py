"""Deterministic fault injection for the transformation pipeline.

The library is salted with *named injection sites* -- WAL append/flush,
table writes and index maintenance, every phase boundary of
:meth:`repro.transform.base.Transformation.step`, the latched windows and
swap of the three synchronization strategies, and the consistency checker.
Each site is declared once with :func:`register_site` (so harnesses can
enumerate them) and crossed at runtime with ``faults.fire(site, ...)``.

Fault injection is **off by default** and zero-overhead when off: every
component holds a reference to :data:`NULL_FAULTS`, whose :meth:`fire`
is an empty one-liner -- the same pattern as
:data:`repro.obs.metrics.NULL_METRICS`.  To inject faults, build a seeded
:class:`FaultPlan`, arm faults on sites, wrap it in a
:class:`FaultInjector` and attach it with
:meth:`repro.engine.database.Database.attach_faults`.

Three fault species cover the paper's failure model:

* :class:`CrashFault` -- simulated process kill (Section 6): raises
  :class:`~repro.common.errors.SimulatedCrashError`; the harness drops all
  volatile state and reruns ARIES restart recovery on the surviving log.
* :class:`AbortFault` -- raises
  :class:`~repro.common.errors.TransformationAbortedError` into the
  transformation (the DBA- or policy-initiated abort of Section 3.4).
* :class:`DelayFault` -- does not raise; it *starves* the background
  process by squeezing the per-step budget, driving the Section 3.3
  end-of-iteration analysis into its starvation decision.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    SimulatedCrashError,
    TransformationAbortedError,
    TransformationStarvedError,
)

# ---------------------------------------------------------------------------
# Site registry
# ---------------------------------------------------------------------------

#: Every declared injection site: name -> (layer, description).
SITE_REGISTRY: Dict[str, Tuple[str, str]] = {}


def register_site(name: str, layer: str, description: str) -> str:
    """Declare an injection site; returns ``name`` for assignment.

    Sites are module-level constants next to the code that crosses them,
    so importing the library populates :data:`SITE_REGISTRY` and a sweep
    harness can enumerate every crashable point without running anything.
    Re-registration with identical metadata is idempotent (reload safety).
    """
    existing = SITE_REGISTRY.get(name)
    if existing is not None and existing != (layer, description):
        raise ValueError(f"injection site {name!r} already registered "
                         f"with different metadata")
    SITE_REGISTRY[name] = (layer, description)
    return name


def sites_by_layer(layer: str = None) -> List[str]:
    """Sorted site names, optionally restricted to one layer."""
    return sorted(name for name, (site_layer, _) in SITE_REGISTRY.items()
                  if layer is None or site_layer == layer)


# ---------------------------------------------------------------------------
# Fault species
# ---------------------------------------------------------------------------


class Fault:
    """A single armed failure.  Subclasses define what firing *does*."""

    kind = "fault"

    def trigger(self, site: str, ctx: Dict[str, object]) -> "Optional[Fault]":
        """Fire at ``site``.  Raise to fail the operation, or return
        ``self`` to hand the fault to the caller (delay faults)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class CrashFault(Fault):
    """Simulated process kill: raises :class:`SimulatedCrashError`.

    The exception is deliberately *not* a :class:`TransformationError`;
    nothing inside the library catches it, so it unwinds straight to the
    harness, which abandons the volatile state and runs restart recovery.
    """

    kind = "crash"

    def trigger(self, site: str, ctx: Dict[str, object]) -> None:
        raise SimulatedCrashError(site)


class AbortFault(Fault):
    """Raises :class:`TransformationAbortedError` into the caller.

    With ``starved=True`` it raises the
    :class:`~repro.common.errors.TransformationStarvedError` subclass
    instead -- the Section 3.3 starvation abort -- which retry drivers
    like :class:`~repro.transform.supervisor.TransformationSupervisor`
    answer with priority escalation rather than a plain retry.
    """

    kind = "abort"

    def __init__(self, reason: str = "injected abort",
                 starved: bool = False) -> None:
        self.reason = reason
        self.starved = starved

    def trigger(self, site: str, ctx: Dict[str, object]) -> None:
        exc = TransformationStarvedError if self.starved \
            else TransformationAbortedError
        raise exc(f"{self.reason} (at site {site!r})")


class DiskFault(Fault):
    """Base class of the disk-misbehaviour species.

    Disk faults never raise: firing returns the fault itself, and the
    only consumer is :class:`repro.wal.durable.SimulatedDisk`, which
    applies the corruption to its durable image (the same hand-off
    pattern as :class:`DelayFault`).  They model the three classic ways
    stable storage betrays a WAL: a crash cutting the last write
    mid-frame (torn write), an fsync that reports success without
    persisting (lost flush / lying fsync), and silent media corruption
    (a flipped bit inside a previously-synced frame).
    """

    kind = "disk"

    def trigger(self, site: str, ctx: Dict[str, object]) -> "DiskFault":
        return self


class TornWriteFault(DiskFault):
    """The crash cuts the final flushed write mid-frame.

    When armed on ``disk.sync`` and fired, the disk remembers a *pending
    tear*: the crash image (what survives the simulated kill) loses the
    last ``cut`` bytes of the final synced write -- by default half of
    it, always at least one byte -- leaving a partially-written frame
    for salvage to truncate.  ``cut`` may exceed the final write; the
    tear is clamped so the segment header always survives.
    """

    kind = "torn_write"

    def __init__(self, cut: Optional[int] = None) -> None:
        if cut is not None and cut < 1:
            raise ValueError("TornWriteFault cut must be >= 1")
        self.cut = cut


class LostFlushFault(DiskFault):
    """A lying fsync: sync reports success, durability does not advance.

    While the arming keeps firing (``times=N`` lies for N syncs), the
    durable horizon of the disk is frozen; the written bytes stay in the
    simulated page cache and a *later*, honest sync persists them.  A
    crash while the horizon is frozen therefore loses exactly the
    unflushed tail -- a clean, frame-aligned prefix survives.
    """

    kind = "lost_flush"


class BitFlipFault(DiskFault):
    """Silent media corruption: one bit flips inside a synced frame.

    Applied to the crash image: frame ``frame_index`` (clamped to the
    frames present; ``None`` picks a middle frame, preferring a
    non-final one so the corruption is unambiguously *mid-log*) has bit
    ``bit`` of its payload inverted.  Salvage must detect the mismatch
    via the frame CRC and quarantine the log -- a flipped bit must never
    be silently applied.
    """

    kind = "bit_flip"

    def __init__(self, frame_index: Optional[int] = None,
                 bit: int = 0) -> None:
        if frame_index is not None and frame_index < 0:
            raise ValueError("BitFlipFault frame_index must be >= 0")
        if bit < 0:
            raise ValueError("BitFlipFault bit must be >= 0")
        self.frame_index = frame_index
        self.bit = bit


class DelayFault(Fault):
    """Starves the background process instead of failing it.

    Firing returns the fault itself; the only site that *consumes* it is
    the per-step budget slice of ``Transformation.step``, which clamps the
    step budget to :attr:`budget` work units.  Repeated hits keep the
    propagator from catching up with the log producers, which is exactly
    the starvation scenario of Section 3.3.
    """

    kind = "delay"

    def __init__(self, budget: int = 1) -> None:
        if budget < 1:
            raise ValueError("DelayFault budget must be >= 1")
        self.budget = budget

    def trigger(self, site: str, ctx: Dict[str, object]) -> "DelayFault":
        return self


# ---------------------------------------------------------------------------
# Plans and the injector
# ---------------------------------------------------------------------------


class _Arming:
    """One armed fault: fire on crossing number ``hit``, up to ``times``."""

    __slots__ = ("fault", "hit", "times", "fired")

    def __init__(self, fault: Fault, hit: int, times: int) -> None:
        self.fault = fault
        self.hit = hit
        self.times = times
        self.fired = 0


class FaultPlan:
    """A reproducible schedule of faults, keyed by injection site.

    ``arm(site, fault, hit=3)`` fires ``fault`` on the third crossing of
    ``site``; ``times`` limits how often it fires after that (an
    ``AbortFault`` storm is ``times=3``).  ``arm_chance`` arms
    probabilistically from the plan's seeded RNG, so a fuzzing run is
    fully reproducible from ``FaultPlan(seed=n)``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.armed: Dict[str, List[_Arming]] = {}

    def arm(self, site: str, fault: Fault, hit: int = 1,
            times: int = 1) -> "FaultPlan":
        """Arm ``fault`` at ``site``; chainable."""
        if site not in SITE_REGISTRY:
            raise KeyError(f"unknown injection site {site!r}; "
                           f"known sites: {sites_by_layer()}")
        if hit < 1:
            raise ValueError("hit counts from 1 (first crossing)")
        if times < 1:
            raise ValueError("times must be >= 1")
        self.armed.setdefault(site, []).append(_Arming(fault, hit, times))
        return self

    def arm_chance(self, site: str, fault: Fault, probability: float,
                   horizon: int = 64) -> "FaultPlan":
        """Arm ``fault`` at a random crossing within ``horizon`` with the
        given probability, drawn from the plan's seeded RNG."""
        if self.rng.random() < probability:
            self.arm(site, fault, hit=self.rng.randint(1, horizon))
        return self


class FaultInjector:
    """Runtime side of a :class:`FaultPlan`: counts crossings, fires faults.

    Components call :meth:`fire` on every site crossing.  The injector
    counts the crossing, checks whether an arming matches, and either
    triggers the fault (which may raise) or returns ``None``.  ``hits``
    and ``fired`` expose what actually happened for assertions and for
    the sweep harness's site-discovery pass.  ``on_fire`` (when set) is
    called as ``on_fire(site, crossing, kind)`` the moment a fault
    triggers -- **before** the fault acts, since a crash fault never
    returns -- which is how the flight recorder captures firings into a
    postmortem even when the firing kills the run.
    """

    enabled = True

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        #: site -> number of crossings observed.
        self.hits: Dict[str, int] = {}
        #: chronological (site, crossing#, fault kind) firing log.
        self.fired: List[Tuple[str, int, str]] = []
        #: optional firing observer (e.g. FlightRecorder.note_fault).
        self.on_fire: Optional[Callable[[str, int, str], None]] = None

    def fire(self, site: str, **ctx: object) -> Optional[Fault]:
        """Record a crossing of ``site``; trigger any matching fault."""
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for arming in self.plan.armed.get(site, ()):
            if arming.fired >= arming.times:
                continue
            if count >= arming.hit:
                arming.fired += 1
                self.fired.append((site, count, arming.fault.kind))
                if self.on_fire is not None:
                    self.on_fire(site, count, arming.fault.kind)
                return arming.fault.trigger(site, ctx)
        return None

    def reset_counts(self) -> None:
        """Forget crossings and firings (armings keep their fired totals)."""
        self.hits.clear()
        self.fired.clear()


class _NullFaults(FaultInjector):
    """The shared disabled injector: :meth:`fire` is a no-op.

    Components default to this singleton so the non-injecting path costs
    one attribute lookup and an empty call, mirroring
    :class:`repro.obs.metrics._NullMetrics`.  It cannot be enabled --
    construct a :class:`FaultInjector` instead.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(FaultPlan())

    def fire(self, site: str, **ctx: object) -> None:  # noqa: D102
        return None

    def __setattr__(self, name: str, value: object) -> None:
        if name == "enabled" and value:
            raise ValueError(
                "NULL_FAULTS cannot be enabled; construct FaultInjector()")
        super().__setattr__(name, value)


#: The shared disabled injector (see :class:`_NullFaults`).
NULL_FAULTS = _NullFaults()
