"""repro: Online, Non-blocking Relational Schema Changes.

A faithful, self-contained reproduction of Løland & Hvasshovd,
*Online, Non-blocking Relational Schema Changes* (EDBT 2006): a
main-memory relational engine with ARIES-style logging and strict 2PL,
and on top of it the paper's log-redo-based framework for performing
full outer join and vertical split schema transformations without
blocking concurrent user transactions -- plus the companion operators
(explode, horizontal partition/merge, retype) and a declarative,
crash-resumable migration-plan API chaining them.

Quickstart::

    from repro import Database, Session, TableSchema
    from repro import MigrationPlan, run_plan

    db = Database()
    db.create_table(TableSchema("R", ["a", "b", "c"], primary_key=["a"]))
    db.create_table(TableSchema("S", ["c", "d", "e"], primary_key=["c"]))
    with Session(db) as s:
        s.insert("R", {"a": 1, "b": "x", "c": 10})
        s.insert("S", {"c": 10, "d": "d1", "e": "e1"})

    plan = MigrationPlan.single("quickstart", "foj", {
        "r_name": "R", "s_name": "S", "target_name": "T",
        "join_attr_r": "c", "join_attr_s": "c"})
    report = run_plan(db, plan)
    print(report["steps"][0]["published"])   # {'T': 1}

See ``examples/`` for concurrent-workload scenarios and ``benchmarks/``
for the reproduction of the paper's evaluation (Figure 4).
"""

from repro.common.errors import (
    DeadlockError,
    DuplicateKeyError,
    InconsistentDataError,
    LockWaitError,
    LogCorruptionError,
    NoSuchRowError,
    NoSuchTableError,
    ReproError,
    SchemaError,
    SimulatedCrashError,
    TransactionAbortedError,
    TransformationAbortedError,
    TransformationError,
    TransformationStarvedError,
)
from repro.faults import (
    NULL_FAULTS,
    AbortFault,
    BitFlipFault,
    CrashFault,
    DelayFault,
    FaultInjector,
    FaultPlan,
    LostFlushFault,
    SITE_REGISTRY,
    TornWriteFault,
    register_site,
    sites_by_layer,
)
from repro.obs import (
    NULL_METRICS,
    Counter,
    EventRing,
    Histogram,
    Metrics,
    TraceEvent,
    build_run_report,
    render_report,
    run_section,
)
from repro.engine import (
    Database,
    FuzzyScan,
    Session,
    bulk_load,
    fuzzy_copy,
    restart,
    restart_from_disk,
)
from repro.relational import (
    ExplodeSpec,
    FojSpec,
    RETYPE_CASTS,
    RetypeSpec,
    SplitSpec,
    explode,
    full_outer_join,
    retype,
    rows_equal,
    split,
)
from repro.plan import (
    CORPUS,
    CorpusScenario,
    MigrationPlan,
    MigrationStep,
    PLAN_OPERATORS,
    PlanExecutor,
    PlanStepper,
    PlanValidationError,
    PlanValidator,
    run_plan,
)
from repro.storage import (
    Attribute,
    FunctionalDependency,
    SnapshotHandle,
    TableSchema,
)
from repro.transform import (
    AttrPredicate,
    ExplodeTransformation,
    FixedIterationsPolicy,
    RetypeTransformation,
    FojTransformation,
    Many2ManyFojTransformation,
    MaterializedFojView,
    MergeSpec,
    MergeTransformation,
    PartitionSpec,
    PartitionTransformation,
    Phase,
    POPULATION_MODES,
    RemainingRecordsPolicy,
    SplitTransformation,
    STORAGE_BACKENDS,
    SYNC_STRATEGIES,
    SyncStrategy,
    TransformationSupervisor,
    TransformOptions,
    VersionFlipSync,
    add_attribute,
    remove_attribute,
    rename_attribute,
    resolve_sync_strategy,
)
from repro.wal import (
    FlushPolicy,
    GROUP_FLUSH,
    IMMEDIATE_FLUSH,
    SalvageReport,
    SimulatedDisk,
)

__version__ = "1.0.0"

__all__ = [
    "AbortFault",
    "AttrPredicate",
    "Attribute",
    "BitFlipFault",
    "CORPUS",
    "CorpusScenario",
    "Counter",
    "CrashFault",
    "Database",
    "ExplodeSpec",
    "ExplodeTransformation",
    "DeadlockError",
    "DelayFault",
    "DuplicateKeyError",
    "FaultInjector",
    "FaultPlan",
    "FixedIterationsPolicy",
    "FlushPolicy",
    "FojSpec",
    "FojTransformation",
    "FunctionalDependency",
    "FuzzyScan",
    "GROUP_FLUSH",
    "IMMEDIATE_FLUSH",
    "EventRing",
    "Histogram",
    "InconsistentDataError",
    "LockWaitError",
    "LogCorruptionError",
    "LostFlushFault",
    "Many2ManyFojTransformation",
    "MaterializedFojView",
    "MergeSpec",
    "MergeTransformation",
    "Metrics",
    "MigrationPlan",
    "MigrationStep",
    "NULL_FAULTS",
    "NULL_METRICS",
    "NoSuchRowError",
    "NoSuchTableError",
    "PLAN_OPERATORS",
    "PartitionSpec",
    "PartitionTransformation",
    "Phase",
    "PlanExecutor",
    "PlanStepper",
    "PlanValidationError",
    "PlanValidator",
    "POPULATION_MODES",
    "RETYPE_CASTS",
    "RemainingRecordsPolicy",
    "ReproError",
    "RetypeSpec",
    "RetypeTransformation",
    "SITE_REGISTRY",
    "STORAGE_BACKENDS",
    "SYNC_STRATEGIES",
    "SalvageReport",
    "SchemaError",
    "Session",
    "SimulatedCrashError",
    "SimulatedDisk",
    "SnapshotHandle",
    "SplitSpec",
    "SplitTransformation",
    "SyncStrategy",
    "TableSchema",
    "TornWriteFault",
    "TraceEvent",
    "TransactionAbortedError",
    "TransformationAbortedError",
    "TransformationError",
    "TransformOptions",
    "TransformationStarvedError",
    "TransformationSupervisor",
    "VersionFlipSync",
    "add_attribute",
    "build_run_report",
    "bulk_load",
    "explode",
    "full_outer_join",
    "fuzzy_copy",
    "register_site",
    "remove_attribute",
    "rename_attribute",
    "render_report",
    "resolve_sync_strategy",
    "restart",
    "restart_from_disk",
    "retype",
    "run_plan",
    "run_section",
    "rows_equal",
    "sites_by_layer",
    "split",
    "__version__",
]
