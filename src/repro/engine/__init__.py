"""Execution engine: database facade, sessions, fuzzy scans, recovery."""

from repro.engine.database import Database
from repro.engine.fuzzy import FuzzyScan, apply_log_with_lsn_guard, fuzzy_copy
from repro.engine.recovery import (
    register_rebuilder,
    restart,
    restart_from_disk,
)
from repro.engine.session import Session, bulk_load

__all__ = [
    "Database",
    "FuzzyScan",
    "Session",
    "apply_log_with_lsn_guard",
    "bulk_load",
    "fuzzy_copy",
    "register_rebuilder",
    "restart",
    "restart_from_disk",
]
