"""Ergonomic single-threaded sessions over :class:`Database`.

A :class:`Session` wraps one transaction in a context manager::

    with Session(db) as s:
        s.insert("customer", {"id": 1, "name": "Peter"})
        s.update("customer", (1,), {"name": "Petra"})
    # committed here; rolled back if the block raised

Sessions are for tests, examples and scripts -- single-threaded callers for
whom a lock wait can never resolve.  The interleaved multi-client execution
the paper evaluates is driven by :mod:`repro.sim` instead, which handles
:class:`~repro.common.errors.LockWaitError` by parking clients.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.concurrency.transactions import Transaction
from repro.engine.database import Database


class Session:
    """One transaction bound to a database, with auto commit/rollback."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.txn: Optional[Transaction] = None

    # -- context management -----------------------------------------------

    def __enter__(self) -> "Session":
        self.txn = self.db.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.txn is not None
        if exc_type is None:
            self.db.commit(self.txn)
        elif not self.txn.is_finished:
            self.db.abort(self.txn)
        self.txn = None
        return False

    # -- operations ----------------------------------------------------------

    def _require_txn(self) -> Transaction:
        if self.txn is None:
            raise RuntimeError("session used outside its `with` block")
        return self.txn

    def insert(self, table: str, values: Mapping[str, object]) -> Tuple:
        """Insert a row; returns its primary key."""
        return self.db.insert(self._require_txn(), table, values)

    def delete(self, table: str, key: Tuple) -> None:
        """Delete a row by primary key."""
        self.db.delete(self._require_txn(), table, key)

    def update(self, table: str, key: Tuple,
               changes: Mapping[str, object]) -> None:
        """Update non-key attributes of a row."""
        self.db.update(self._require_txn(), table, key, changes)

    def read(self, table: str, key: Tuple) -> Optional[Dict[str, object]]:
        """Read a row under a shared lock."""
        return self.db.read(self._require_txn(), table, key)

    def read_index(self, table: str, index: str,
                   key: Tuple) -> List[Dict[str, object]]:
        """Read all rows matching an index key."""
        return self.db.read_index(self._require_txn(), table, index, key)


def bulk_load(db: Database, table: str,
              rows: List[Mapping[str, object]],
              batch_size: int = 1000) -> None:
    """Load many rows in committed batches (test/benchmark fixture helper)."""
    for start in range(0, len(rows), batch_size):
        with Session(db) as s:
            for values in rows[start:start + batch_size]:
                s.insert(table, values)
