"""Fuzzy (lock-ignoring) scans and the classic fuzzy-copy technique.

Section 2.2 of the paper: a *fuzzy copy* reads the source table without
setting locks -- producing an inconsistent image that may miss updates made
during the scan and may include uncommitted data -- and then redoes the log
onto the copy until it has caught up.  Record LSNs make the redo idempotent.

The transformation framework reuses the scan half of this machinery for its
initial population step (Section 3.2); the full copy (scan + LSN-guarded
redo) is provided here both as the original building block and as a test
oracle for the scan's correctness.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.storage.row import Row
from repro.storage.table import Table
from repro.wal.records import (
    CLRecord,
    DeleteRecord,
    FuzzyMarkRecord,
    InsertRecord,
    LogRecord,
    UpdateRecord,
    data_change_of,
)


class FuzzyScan:
    """A chunked, lock-ignoring scan of a table.

    The scan materializes the set of live rowids once, at construction, and
    hands out *snapshots* of whatever those rows contain at the moment each
    chunk is read.  Consequences, all intended (Section 3.2):

    * every row committed before the scan started is seen;
    * updates applied to a not-yet-reached row during the scan are seen
      (possibly uncommitted -- locks are ignored);
    * rows inserted after the scan started are *not* seen;
    * rows deleted before their chunk is reached are *not* seen.

    Whatever the scan misses or over-reads is repaired by log propagation,
    which starts from before the scan began.
    """

    def __init__(self, table: Table, chunk_size: int = 256,
                 rowids: Optional[List[int]] = None) -> None:
        """Args:
            table: The table to scan.
            chunk_size: Rows per chunk.
            rowids: Restrict the scan to these rowids (a key-space shard,
                see :mod:`repro.shard`); defaults to every live rowid.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.table = table
        self.chunk_size = chunk_size
        self._rowids: List[int] = list(table.rows) if rowids is None \
            else list(rowids)
        self._position = 0

    @property
    def exhausted(self) -> bool:
        """Whether the scan has handed out every chunk."""
        return self._position >= len(self._rowids)

    @property
    def remaining(self) -> int:
        """Number of rowids not yet visited."""
        return max(0, len(self._rowids) - self._position)

    def next_chunk(self, limit: Optional[int] = None) -> List[Row]:
        """Snapshot the next chunk of still-live rows.

        Returns an empty list once exhausted.  The returned rows are
        snapshots: later updates do not alter them.

        Args:
            limit: Cap on the number of rows returned (defaults to the
                scan's chunk size); lets a budget-driven caller take less
                than a full chunk.  ``limit <= 0`` means the caller has no
                budget at all: the scan returns ``[]`` without advancing.
        """
        if limit is None:
            take = self.chunk_size
        else:
            take = min(self.chunk_size, int(limit))
            if take <= 0:
                return []
        chunk: List[Row] = []
        rows = self.table.rows
        while self._position < len(self._rowids) and \
                len(chunk) < take:
            rowid = self._rowids[self._position]
            self._position += 1
            row = rows.get(rowid)
            if row is not None:
                chunk.append(row.snapshot())
        return chunk

    def __iter__(self) -> Iterator[List[Row]]:
        while not self.exhausted:
            chunk = self.next_chunk()
            if chunk:
                yield chunk


def fuzzy_copy(db, source_name: str, target: Table,
               chunk_size: int = 256) -> None:
    """Classic single-table fuzzy copy (Hvasshovd et al., Section 2.2).

    Writes a begin fuzzy mark, scans ``source_name`` without locks into
    ``target``, then redoes the log from the oldest record of any
    transaction active at the mark, guarded by record LSNs, until the end
    of the log.  On return ``target`` is in the same state as the source
    was at the most recent log record (call with the source quiesced, or
    loop redo yourself, for exact convergence).

    Args:
        db: The :class:`~repro.engine.database.Database`.
        source_name: Name of the table to copy.
        target: An empty table with the same schema (may differ in name).
    """
    source = db.catalog.get(source_name)
    active = [t.txn_id for t in db.txns.active_on([source_name])]
    mark = FuzzyMarkRecord(transform_id="fuzzy-copy", phase="begin",
                           active_txns=tuple(active))
    mark_lsn = db.log.append(mark)
    start_lsn = db.txns.oldest_first_lsn(active)
    if not start_lsn:
        start_lsn = mark_lsn

    for chunk in FuzzyScan(source, chunk_size):
        for row in chunk:
            target.insert_row(dict(row.values), lsn=row.lsn)

    apply_log_with_lsn_guard(db, source_name, target, start_lsn)
    db.log.append(FuzzyMarkRecord(transform_id="fuzzy-copy", phase="end"))


def apply_log_with_lsn_guard(db, source_name: str, target: Table,
                             from_lsn: int,
                             to_lsn: Optional[int] = None) -> int:
    """Redo data changes of ``source_name`` onto ``target``, LSN-guarded.

    A logged operation is applied only if the log record's LSN is greater
    than the target row's LSN -- the classic fuzzy-copy idempotence rule.
    CLRs are unwrapped and their compensating action applied the same way.

    Returns the number of log records inspected.
    """
    count = 0
    for record in db.log.scan(from_lsn, to_lsn):
        count += 1
        change = data_change_of(record)
        if change is None or change.table != source_name:
            continue
        _redo_change_guarded(target, change, record.lsn)
    return count


def _redo_change_guarded(target: Table, change: LogRecord, lsn: int) -> None:
    if isinstance(change, InsertRecord):
        existing = target.get(change.key)
        if existing is None:
            target.insert_row(dict(change.values), lsn=lsn)
        elif existing.lsn < lsn:
            # The copy saw a newer-keyed row die and be re-inserted; align.
            target.update_rowid(existing.rowid, dict(change.values), lsn=lsn)
    elif isinstance(change, DeleteRecord):
        existing = target.get(change.key)
        if existing is not None and existing.lsn < lsn:
            target.delete_rowid(existing.rowid)
    elif isinstance(change, UpdateRecord):
        existing = target.get(change.key)
        if existing is not None and existing.lsn < lsn:
            target.update_rowid(existing.rowid, dict(change.changes), lsn=lsn)
