"""The execution engine: transactional operations over the storage layer.

:class:`Database` glues the catalog, WAL, lock manager and transaction
manager together and exposes the operation set the paper's workload uses
(Section 6: transactions that read and update individual records under
record locks), plus the DDL and hooks the transformation framework needs:

* strict two-phase locking with wait queues and deadlock detection; all
  write operations take exclusive record locks (the paper's propagation
  rules assume "all write operations on the source tables use exclusive
  locks; i.e. delta updates are not allowed");
* ARIES-style logging: every change appends a redo+undo record; rollback
  walks the undo chain emitting Compensating Log Records;
* table latches and blocked tables for the synchronization strategies;
* **lock mirrors**: during non-blocking-commit synchronization, locks taken
  on a source table must simultaneously be taken on the transformed table
  and vice versa (Section 3.4/4.3); registered mirror objects are consulted
  on every lock acquisition;
* **triggers**: synchronous post-operation callbacks running inside the
  user transaction, used by the Ronström baseline (Section 2.1);
* a **wake channel**: lock releases report which parked transactions became
  runnable; the simulator subscribes to re-schedule their clients.

The engine is single-threaded and re-entrant: an operation that must wait
raises :class:`~repro.common.errors.LockWaitError` after enqueueing its lock
request, and the *same* call is retried after wake-up.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import (
    LockWaitError,
    NoSuchRowError,
    NoSuchTableError,
    TransactionAbortedError,
    TransactionStateError,
)
from repro.concurrency.lock_manager import LockManager
from repro.concurrency.locks import LockMode, record_resource, table_resource
from repro.concurrency.transactions import (
    Transaction,
    TransactionManager,
    TxnState,
)
from repro.faults import NULL_FAULTS, FaultInjector, register_site
from repro.obs import NULL_METRICS, Metrics
from repro.storage.catalog import Catalog
from repro.storage.mvcc import TOMBSTONE, MvccManager
from repro.storage.schema import TableSchema
from repro.storage.table import Table
from repro.wal.log import FlushPolicy, LogManager
from repro.wal.records import (
    NULL_LSN,
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CLRecord,
    CommitRecord,
    CreateTableRecord,
    DeleteRecord,
    DropTableRecord,
    EndRecord,
    InsertRecord,
    LogRecord,
    RenameTableRecord,
    UpdateRecord,
)

#: Signature of a trigger: ``fn(db, txn, log_record)``, run synchronously
#: inside the user transaction right after the operation is applied.
TriggerFn = Callable[["Database", Transaction, LogRecord], None]

SITE_TXN_COMMIT = register_site(
    "txn.commit", "engine", "before the commit record is appended")
SITE_TXN_COMMIT_LOGGED = register_site(
    "txn.commit.logged", "engine",
    "after commit+end are logged, before locks are released")
SITE_TXN_ABORT = register_site(
    "txn.abort", "engine", "before the abort record is appended")
SITE_TXN_ROLLBACK_CLR = register_site(
    "txn.rollback.clr", "engine",
    "before each compensating log record during rollback")


class Database:
    """An in-memory, logged, locking relational database."""

    def __init__(self, log: Optional[LogManager] = None,
                 metrics: Optional[Metrics] = None,
                 faults: Optional[FaultInjector] = None,
                 flush_policy: Optional[FlushPolicy] = None) -> None:
        #: Observability registry shared by the engine, its log manager
        #: and its lock manager; the no-op singleton unless one is passed
        #: here (or attached later via :meth:`attach_metrics`).
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Fault injector shared by the engine, catalog, tables and log;
        #: the no-op singleton unless one is passed here (or attached
        #: later via :meth:`attach_faults`).
        self.faults = faults if faults is not None else NULL_FAULTS
        self.catalog = Catalog()
        self.log = log if log is not None else LogManager(self.metrics)
        if metrics is not None and self.log.metrics is NULL_METRICS:
            self.log.metrics = self.metrics
        if flush_policy is not None:
            self.log.flush_policy = flush_policy
        if faults is not None:
            self.attach_faults(faults)
        self.locks = LockManager(self.metrics)
        self.txns = TransactionManager()
        #: Mirror objects consulted on every record-lock acquisition; see
        #: :class:`repro.transform.sync.LockMirror`.
        self.lock_mirrors: List[object] = []
        #: Hooks fired on record reads/updates, after the record lock is
        #: granted and before the row is fetched; lazy population's
        #: migrate-on-read path (:class:`repro.transform.lazy.LazyMigrator`)
        #: installs itself here for the duration of POPULATING.
        self.access_hooks: List[object] = []
        self._triggers: Dict[str, List[TriggerFn]] = {}
        self._blocked_waiters: Dict[str, List[int]] = {}
        #: Multi-version overlay (:class:`repro.storage.mvcc.MvccManager`)
        #: once :meth:`enable_mvcc` has been called; ``None`` under the
        #: default latch-based storage.
        self.mvcc: Optional[MvccManager] = None
        #: Callback invoked with the ids of transactions woken by a lock
        #: release / unlatch / unblock; set by the simulator.
        self.on_wake: Optional[Callable[[List[int]], None]] = None
        #: Operation counters, read by the simulator's cost accounting.
        self.stats: Dict[str, int] = {
            "insert": 0, "delete": 0, "update": 0, "read": 0,
            "commit": 0, "abort": 0, "trigger": 0,
        }

    def attach_metrics(self, metrics: Metrics) -> None:
        """Switch the engine (and its log/lock managers) to ``metrics``.

        Lets an already-populated database be observed from now on -- the
        simulator's ``observe`` mode attaches a registry right before the
        measured run so bulk-load noise is excluded.
        """
        self.metrics = metrics
        self.log.metrics = metrics
        self.locks.metrics = metrics

    def attach_faults(self, faults: FaultInjector) -> None:
        """Switch the engine, catalog, tables and log to ``faults``.

        The sweep harness attaches an injector right before the fault it
        wants to exercise, so setup (bulk load, transformation creation)
        never trips a site.  Detach by attaching :data:`NULL_FAULTS`.
        """
        self.faults = faults
        self.catalog.attach_faults(faults)
        self.log.faults = faults
        if self.mvcc is not None:
            self.mvcc.faults = faults

    def enable_mvcc(self) -> MvccManager:
        """Switch on the multi-version overlay; idempotent.

        From here on every :meth:`begin` pins a snapshot, every commit
        stamps the transaction's final images at its commit LSN, and
        table names resolve through the pinned catalog epoch for
        transactions that began before a version flip.  The physical
        heap, logging, locking and recovery are unchanged -- the overlay
        only *remembers* superseded committed images.
        """
        if self.mvcc is None:
            self.mvcc = MvccManager(self)
        return self.mvcc

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema,
                     transient: bool = False) -> Table:
        """Create a table; logs a DDL record.

        Args:
            schema: The new table's schema.
            transient: Mark the table as a transformation target whose
                content is not recoverable from the log (restart recovery
                discards transient tables; the transformation is restarted
                instead, per the paper's abort-on-trouble policy).
        """
        table = self.catalog.create_table(schema)
        self.log.append(CreateTableRecord(schema=schema, transient=transient))
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; logs a DDL record."""
        self.catalog.drop_table(name)
        self.log.append(DropTableRecord(table=name))

    def rename_table(self, old: str, new: str) -> None:
        """Rename a table; logs a DDL record."""
        self.catalog.rename_table(old, new)
        self.log.append(RenameTableRecord(old_name=old, new_name=new))

    def table(self, name: str) -> Table:
        """Visible table object by name (catalog lookup)."""
        return self.catalog.get(name)

    def checkpoint(self) -> int:
        """Write a fuzzy checkpoint; returns its LSN.

        Records the active-transaction table (id -> last LSN) so restart
        analysis can start from the checkpoint instead of the log head.
        Being a main-memory system, no pages are flushed; the checkpoint
        only bounds the analysis scan (redo still replays from the start
        of the log, as the data lives in memory only).
        """
        active = {t.txn_id: t.last_lsn for t in self.txns.active_txns()}
        return self.log.append(CheckpointRecord(active_txns=active))

    # ------------------------------------------------------------------
    # Transaction life cycle
    # ------------------------------------------------------------------

    def begin(self, start_time: float = 0.0) -> Transaction:
        """Start a new transaction (logs its begin record)."""
        txn = self.txns.begin(start_time)
        lsn = self.log.append(BeginRecord(txn_id=txn.txn_id))
        txn.note_record(lsn)
        if self.mvcc is not None:
            self.mvcc.on_begin(txn)
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit: log commit + end, force the log, release all locks."""
        self._require_active(txn)
        self.faults.fire(SITE_TXN_COMMIT, txn_id=txn.txn_id)
        lsn = self.log.append(CommitRecord(txn_id=txn.txn_id),
                              prev_lsn=txn.last_lsn)
        txn.note_record(lsn)
        self.log.append(EndRecord(txn_id=txn.txn_id, committed=True),
                        prev_lsn=txn.last_lsn)
        self.log.request_flush()
        self.faults.fire(SITE_TXN_COMMIT_LOGGED, txn_id=txn.txn_id)
        txn.state = TxnState.COMMITTED
        if self.mvcc is not None:
            # Stamp the transaction's final images at its commit LSN
            # before the X locks drop: the next writer's chain seed must
            # observe post-commit state.
            self.mvcc.on_commit(txn, lsn)
        self.stats["commit"] += 1
        self._release_locks(txn)

    def abort(self, txn: Transaction) -> None:
        """Roll back: undo the chain with CLRs, log abort + end, release."""
        if txn.is_finished:
            return
        if txn.state not in (TxnState.ACTIVE, TxnState.ROLLING_BACK):
            raise TransactionStateError(
                f"cannot abort transaction in state {txn.state}")
        txn.state = TxnState.ROLLING_BACK
        self.faults.fire(SITE_TXN_ABORT, txn_id=txn.txn_id)
        lsn = self.log.append(AbortRecord(txn_id=txn.txn_id),
                              prev_lsn=txn.last_lsn)
        txn.note_record(lsn)
        self._rollback(txn)
        self.log.append(EndRecord(txn_id=txn.txn_id, committed=False),
                        prev_lsn=txn.last_lsn)
        self.log.request_flush()
        txn.state = TxnState.ABORTED
        if self.mvcc is not None:
            # Pending images never reached a chain; the CLR chain above
            # already restored the heap to committed state.
            self.mvcc.on_abort(txn)
        self.stats["abort"] += 1
        self._release_locks(txn)

    def _rollback(self, txn: Transaction) -> None:
        """Walk the undo chain, compensating each data change."""
        lsn = self.log.record_at(txn.last_lsn).prev_lsn
        while lsn != NULL_LSN:
            record = self.log.record_at(lsn)
            if isinstance(record, CLRecord):
                lsn = record.undo_next_lsn
                continue
            compensation = self._compensation_of(record)
            if compensation is not None:
                self.faults.fire(SITE_TXN_ROLLBACK_CLR, txn_id=txn.txn_id,
                                 undo_lsn=lsn)
                clr = CLRecord(txn_id=txn.txn_id, action=compensation,
                               undo_next_lsn=record.prev_lsn)
                clr_lsn = self.log.append(clr, prev_lsn=txn.last_lsn)
                txn.note_record(clr_lsn)
                self._apply_change(compensation, clr_lsn)
                # Triggers see compensations too (the trigger-based
                # baseline must undo its maintenance work on rollback).
                compensation.lsn = clr_lsn
                self._fire_triggers(compensation.table, txn, compensation)
            lsn = record.prev_lsn

    @staticmethod
    def _compensation_of(record: LogRecord) -> Optional[LogRecord]:
        """Build the compensating data-change for one undo-chain record."""
        if isinstance(record, InsertRecord):
            return DeleteRecord(txn_id=record.txn_id, table=record.table,
                                key=record.key,
                                old_values=dict(record.values))
        if isinstance(record, DeleteRecord):
            return InsertRecord(txn_id=record.txn_id, table=record.table,
                                key=record.key,
                                values=dict(record.old_values))
        if isinstance(record, UpdateRecord):
            return UpdateRecord(txn_id=record.txn_id, table=record.table,
                                key=record.key,
                                changes=dict(record.old_values),
                                old_values=dict(record.changes))
        return None

    def _apply_change(self, change: LogRecord, lsn: int) -> None:
        """Physically apply a (compensating) data change to its table."""
        table = self.catalog.get_any(change.table)
        if isinstance(change, InsertRecord):
            table.insert_row(change.values, lsn=lsn)
        elif isinstance(change, DeleteRecord):
            table.delete_key(change.key)
        elif isinstance(change, UpdateRecord):
            table.update_key(change.key, change.changes, lsn=lsn)

    def _release_locks(self, txn: Transaction) -> None:
        woken = self.locks.release_all(txn.txn_id)
        for mirror in self.lock_mirrors:
            woken.extend(mirror.on_release(self, txn))
        self._notify_woken(woken)

    def _notify_woken(self, woken: List[int]) -> None:
        if not woken or self.on_wake is None:
            return
        # Proxy lock owners (the propagator holding a transaction's
        # mirrored locks under the negated id) wake the transaction itself.
        seen = set()
        translated: List[int] = []
        for txn_id in woken:
            real = abs(txn_id)
            if real not in seen:
                seen.add(real)
                translated.append(real)
        self.on_wake(translated)

    def _require_active(self, txn: Transaction) -> None:
        if txn.doomed:
            # Forced abort (non-blocking-abort synchronization): roll the
            # transaction back if that has not happened yet, and surface
            # the abort to the caller.
            if not txn.is_finished:
                self.abort(txn)
            raise TransactionAbortedError(txn.txn_id, txn.doom_reason)
        if txn.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {txn.txn_id} is {txn.state.value}")

    # ------------------------------------------------------------------
    # Table resolution and admission control
    # ------------------------------------------------------------------

    def _resolve(self, txn: Transaction, name: str,
                 for_write: bool = False) -> Table:
        """Resolve a table name for a transaction.

        Old transactions (those that touched a source table before a
        non-blocking swap) keep seeing their table under its original name
        through the zombie namespace; everyone else sees the public catalog.
        Blocked tables (blocking-commit synchronization) park transactions
        that have not already accessed them.  Under MVCC, a transaction
        whose snapshot pinned an older catalog epoch resolves through the
        frozen pre-flip mapping instead (snapshot isolation for schema:
        the flip is invisible until the transaction finishes).
        """
        if self.mvcc is not None:
            pinned = self._resolve_pinned_epoch(txn, name, for_write)
            if pinned is not None:
                return pinned
        if self.catalog.exists(name):
            if self.catalog.is_blocked(name) and \
                    name not in txn.tables_touched:
                if self.locks.locks_of(txn.txn_id):
                    # Liveness: a newcomer holding locks on other tables
                    # must not park here -- a draining old transaction may
                    # be waiting on those very locks, deadlocking the
                    # blocking-commit synchronization against its own
                    # block.  Abort the newcomer instead (the lock-wait-
                    # timeout/kill resolution real systems apply to DDL
                    # vs. DML conflicts); it can retry after the swap.
                    txn.doom(f"table {name!r} is blocked by a schema "
                             "transformation")
                    self.abort(txn)
                    raise TransactionAbortedError(txn.txn_id,
                                                  txn.doom_reason)
                waiters = self._blocked_waiters.setdefault(name, [])
                if txn.txn_id not in waiters:
                    waiters.append(txn.txn_id)
                # The blocker is the sync strategy that blocked the
                # table; the board's ("blocked", name) owner defaults to
                # the sync role unless a strategy registered otherwise.
                self.metrics.blame.begin_wait(
                    txn.txn_id, ("blocked", name), (("blocked", name),),
                    "blocked")
                raise LockWaitError(("blocked", name), txn.txn_id)
            return self.catalog.get(name)
        if self.catalog.is_zombie(name) and name in txn.tables_touched:
            return self.catalog.get_any(name)
        raise NoSuchTableError(name)

    def _resolve_pinned_epoch(self, txn: Transaction, name: str,
                              for_write: bool) -> Optional[Table]:
        """Resolve through a pinned pre-flip catalog epoch, if any.

        ``None`` means the transaction reads the current epoch (no pin,
        pinned at the current version, or the name maps to the same
        table object in both) and the caller should resolve normally.
        A name that only exists post-flip raises
        :class:`NoSuchTableError` -- a reader pinned before the flip
        never observes the new schema.  Writes to a retired table are
        only allowed for the in-flight transactions whose locks the flip
        materialized (``mvcc.write_through``); anyone else is doomed,
        mirroring the first-updater-wins rule of snapshot databases.
        """
        mapping = self.mvcc.names_for(txn)
        if mapping is None:
            return None
        table = mapping.get(name)
        if table is None:
            raise NoSuchTableError(name)
        if self.catalog.exists(name) and self.catalog.get(name) is table:
            return None
        if for_write and txn.txn_id not in self.mvcc.write_through:
            txn.doom(f"table {name!r} changed schema version after this "
                     "transaction's snapshot was pinned")
            self.abort(txn)
            raise TransactionAbortedError(txn.txn_id, txn.doom_reason)
        return table

    def unblock_tables(self, names: Sequence[str]) -> None:
        """Lift blocking-commit blocks and wake parked transactions."""
        self.catalog.unblock(names)
        woken: List[int] = []
        for name in names:
            parked = self._blocked_waiters.pop(name, [])
            for waiter in parked:
                self.metrics.blame.end_wait(waiter, ("blocked", name))
            woken.extend(parked)
        self._notify_woken(woken)

    def latch_table(self, table: Table, owner: str) -> None:
        """Take the exclusive table latch (transformation sync only).

        The engine-level counterpart of :meth:`unlatch_table`, so the two
        halves of a latched window go through the same bookkeeping layer
        (latch metrics and trace events live in the lock manager; any
        future engine-level accounting hooks in here symmetrically).
        """
        self.locks.latch_table(table.uid, owner)

    def unlatch_table(self, table: Table, owner: str) -> None:
        """Drop a table latch and wake operations parked on it."""
        woken = self.locks.unlatch_table(table.uid, owner)
        self._notify_woken(woken)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _lock_record(self, txn: Transaction, table: Table, key: Tuple,
                     mode: LockMode) -> None:
        self.locks.check_latch(table.uid, txn.txn_id)
        # Multigranularity: intention lock on the table, then the record.
        intention = LockMode.IX if mode.is_write else LockMode.IS
        self.locks.acquire(txn.txn_id, table_resource(table.uid), intention)
        resource = record_resource(table.uid, key)
        self.locks.acquire(txn.txn_id, resource, mode)
        for mirror in self.lock_mirrors:
            mirror.on_lock(self, txn, table, key, mode)

    def _fire_access_hooks(self, txn: Transaction, table_name: str,
                           key: Tuple) -> None:
        """Run the installed access hooks for a locked read/update target.

        Runs synchronously inside the accessing transaction, after the
        record lock is granted (so the row the hook sees is stable) and
        before the row is fetched (so a migrate-on-read hook completes
        before the caller observes the record).
        """
        for hook in self.access_hooks:
            hook.on_access(self, txn, table_name, key)

    def lock_table(self, txn: Transaction, table_name: str,
                   mode: LockMode = LockMode.S) -> None:
        """Take an explicit table-granularity lock (S/X, or SIX).

        Conflicts with other transactions' intention locks per the
        multigranularity matrix: a table S lock blocks writers of any
        record, a table X lock blocks everything.
        """
        self._require_active(txn)
        table = self._resolve(txn, table_name, for_write=mode.is_write)
        self.locks.check_latch(table.uid, txn.txn_id)
        self.locks.acquire(txn.txn_id, table_resource(table.uid), mode)
        txn.tables_touched.add(table.name)

    def select_all(self, txn: Transaction,
                   table_name: str) -> List[Dict[str, object]]:
        """Read every row of a table under a table-granularity S lock.

        The blocking full read the paper's INSERT INTO ... SELECT baseline
        performs -- provided for completeness; the transformation framework
        itself only ever reads fuzzily.
        """
        self.lock_table(txn, table_name, LockMode.S)
        table = self._resolve(txn, table_name)
        self.stats["read"] += 1
        return [dict(row.values) for row in table.scan()]

    def insert(self, txn: Transaction, table_name: str,
               values: Mapping[str, object]) -> Tuple:
        """Insert a row; returns its primary-key tuple.

        Takes an exclusive record lock on the new key, logs an insert
        record with the full row image, applies it, and fires triggers.
        """
        self._require_active(txn)
        table = self._resolve(txn, table_name, for_write=True)
        normalized = table.schema.normalize(values)
        key = table.schema.key_of(normalized)
        self._lock_record(txn, table, key, LockMode.X)
        record = InsertRecord(txn_id=txn.txn_id, table=table.name,
                              key=key, values=normalized)
        lsn = self.log.append(record, prev_lsn=txn.last_lsn)
        txn.note_record(lsn)
        table.insert_row(normalized, lsn=lsn)
        if self.mvcc is not None:
            self.mvcc.note_write(txn, table, None, dict(normalized))
        txn.tables_touched.add(table.name)
        self.stats["insert"] += 1
        self._fire_triggers(table.name, txn, record)
        return key

    def delete(self, txn: Transaction, table_name: str, key: Tuple) -> None:
        """Delete the row with the given primary key."""
        self._require_active(txn)
        table = self._resolve(txn, table_name, for_write=True)
        key = tuple(key)
        self._lock_record(txn, table, key, LockMode.X)
        row = table.get(key)
        if row is None:
            raise NoSuchRowError(table.name, key)
        record = DeleteRecord(txn_id=txn.txn_id, table=table.name, key=key,
                              old_values=dict(row.values))
        lsn = self.log.append(record, prev_lsn=txn.last_lsn)
        txn.note_record(lsn)
        if self.mvcc is not None:
            self.mvcc.note_write(txn, table, dict(row.values), TOMBSTONE,
                                 before_lsn=row.lsn)
        table.delete_rowid(row.rowid)
        txn.tables_touched.add(table.name)
        self.stats["delete"] += 1
        self._fire_triggers(table.name, txn, record)

    def update(self, txn: Transaction, table_name: str, key: Tuple,
               changes: Mapping[str, object]) -> None:
        """Update non-key attributes of the row with the given key.

        The log record carries only the changed attributes (and their old
        values for undo), matching the paper's update-record contents.
        """
        self._require_active(txn)
        table = self._resolve(txn, table_name, for_write=True)
        table.schema.validate_changes(changes)
        key = tuple(key)
        self._lock_record(txn, table, key, LockMode.X)
        self._fire_access_hooks(txn, table.name, key)
        row = table.get(key)
        if row is None:
            raise NoSuchRowError(table.name, key)
        old_values = {attr: row.values[attr] for attr in changes}
        before = None if self.mvcc is None else dict(row.values)
        before_lsn = row.lsn
        record = UpdateRecord(txn_id=txn.txn_id, table=table.name, key=key,
                              changes=dict(changes), old_values=old_values)
        lsn = self.log.append(record, prev_lsn=txn.last_lsn)
        txn.note_record(lsn)
        table.update_rowid(row.rowid, dict(changes), lsn=lsn)
        if self.mvcc is not None:
            self.mvcc.note_write(txn, table, before, dict(row.values),
                                 before_lsn=before_lsn)
        txn.tables_touched.add(table.name)
        self.stats["update"] += 1
        self._fire_triggers(table.name, txn, record)

    def read(self, txn: Transaction, table_name: str,
             key: Tuple) -> Optional[Dict[str, object]]:
        """Read a row under a shared lock; returns a copy or ``None``."""
        self._require_active(txn)
        table = self._resolve(txn, table_name)
        key = tuple(key)
        self._lock_record(txn, table, key, LockMode.S)
        self._fire_access_hooks(txn, table.name, key)
        txn.tables_touched.add(table.name)
        self.stats["read"] += 1
        row = table.get(key)
        return None if row is None else dict(row.values)

    def read_index(self, txn: Transaction, table_name: str, index_name: str,
                   key: Tuple) -> List[Dict[str, object]]:
        """Read all rows matching ``key`` in an index, S-locking each."""
        self._require_active(txn)
        table = self._resolve(txn, table_name)
        rows = table.lookup(index_name, tuple(key))
        result = []
        for row in rows:
            pk = table.schema.key_of(row.values)
            self._lock_record(txn, table, pk, LockMode.S)
            result.append(dict(row.values))
        txn.tables_touched.add(table.name)
        self.stats["read"] += 1
        return result

    # ------------------------------------------------------------------
    # Triggers (Ronström baseline support)
    # ------------------------------------------------------------------

    def create_trigger(self, table_name: str, fn: TriggerFn) -> None:
        """Install a synchronous post-operation trigger on a table."""
        self._triggers.setdefault(table_name, []).append(fn)

    def drop_triggers(self, table_name: str) -> None:
        """Remove all triggers from a table."""
        self._triggers.pop(table_name, None)

    def _fire_triggers(self, table_name: str, txn: Transaction,
                       record: LogRecord) -> None:
        for fn in self._triggers.get(table_name, ()):  # inside user txn
            self.stats["trigger"] += 1
            fn(self, txn, record)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run(self, fn: Callable[["Database", Transaction], object]) -> object:
        """Run ``fn(db, txn)`` in a fresh transaction, commit on success.

        Rolls back and re-raises on any exception.  Single-threaded callers
        must not encounter lock waits; a :class:`LockWaitError` escaping
        here indicates a genuine bug or a latched table.
        """
        txn = self.begin()
        try:
            result = fn(self, txn)
        except BaseException:
            self.abort(txn)
            raise
        self.commit(txn)
        return result
