"""ARIES-style restart recovery.

The reproduced system is a main-memory DBMS (like the paper's prototype and
the ClustRa lineage it builds on): a crash loses all table content, and
restart rebuilds it from the log in the classic three passes --

1. **analysis**: find the loser transactions (begun, never ended) and the
   DDL history;
2. **redo**: replay the entire log in LSN order, recreating tables and
   reapplying every data change (including CLR actions) with LSN guards;
3. **undo**: roll back the losers, writing fresh CLRs.

Transformation-specific behaviour (the paper's Section 6 abort policy plus
our extension for completed swaps):

* *transient* tables -- transformation targets whose content was built by
  non-logged physical redo -- are **discarded**: an in-flight transformation
  is simply aborted by the crash and can be restarted;
* a completed :class:`~repro.wal.records.TransformSwapRecord` is honoured:
  at the swap's log position the (latched) source tables were
  action-consistent with the published tables, so recovery *recomputes* the
  published tables by applying the registered transformation operator to
  the recovered source state, then keeps propagating post-swap operations
  of old transactions onto them with the registered rule engine.

Rule engines and rebuild functions are registered per transformation kind
via :func:`register_rebuilder` (the :mod:`repro.transform` package registers
``"foj"`` and ``"split"`` at import time).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import RecoveryError
from repro.concurrency.transactions import Transaction, TxnState
from repro.engine.database import Database
from repro.obs.blame import ROLE_RECOVERY
from repro.storage.table import Table
from repro.wal.log import LogManager
from repro.wal.records import (
    NULL_LSN,
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CLRecord,
    CommitRecord,
    CreateTableRecord,
    DeleteRecord,
    DropTableRecord,
    EndRecord,
    InsertRecord,
    LogRecord,
    RenameTableRecord,
    TransformRetireRecord,
    TransformSwapRecord,
    UpdateRecord,
    data_change_of,
)

#: ``rebuild(db, swap_record) -> (published_tables, propagator_or_None)``.
#: ``published_tables`` maps public name to a fully built
#: :class:`~repro.storage.table.Table`; the optional propagator exposes
#: ``apply(log_record)`` and is fed every post-swap record so operations of
#: surviving old transactions keep flowing into the published tables.
RebuildFn = Callable[[Database, TransformSwapRecord],
                     Tuple[Dict[str, Table], Optional[object]]]

_REBUILDERS: Dict[str, RebuildFn] = {}


def register_rebuilder(kind: str, fn: RebuildFn) -> None:
    """Register the recovery rebuild function for a transformation kind."""
    _REBUILDERS[kind] = fn


def restart(log: LogManager, metrics=None) -> Database:
    """Rebuild a database from its log after a crash.

    Returns a fresh :class:`Database` sharing ``log`` (so processing can
    continue and append to the same history).  Loser transactions are
    rolled back before return; their CLRs are appended to the log.

    When a :class:`~repro.obs.metrics.Metrics` registry is passed, the
    three passes are recorded as ``recovery.analysis`` / ``recovery.redo``
    / ``recovery.undo`` spans under one ``recovery`` root, with record and
    loser counts as span attributes.
    """
    from repro.obs import NULL_METRICS
    obs = metrics if metrics is not None else NULL_METRICS
    db = Database(log=log, metrics=metrics)
    end_lsn = log.end_lsn

    with obs.span("recovery", end_lsn=end_lsn) as root:
        with obs.span("recovery.analysis") as pass_span:
            losers, in_commit, max_txn_id = _analysis(log, end_lsn)
            if obs.enabled:
                pass_span.attrs["losers"] = len(losers)
                pass_span.attrs["in_commit"] = len(in_commit)
        propagators: List[object] = []
        transient_names: Set[str] = set()
        # Transformations retired after publication (e.g. a dropped
        # materialized view): their swap records must not be replayed --
        # rebuilding the artefact just to drop it again wastes the redo
        # pass, and the resurrected rule engine would be fed post-drop
        # source changes the live system only accepted because the
        # artefact was already gone.
        retired_ids: Set[str] = {
            record.transform_id
            for record in log.scan(to_lsn=end_lsn)
            if isinstance(record, TransformRetireRecord)}

        # ---- redo --------------------------------------------------------
        with obs.span("recovery.redo") as pass_span:
            replayed = 0
            for record in log.scan(to_lsn=end_lsn):
                replayed += 1
                if isinstance(record, CreateTableRecord):
                    if record.transient:
                        transient_names.add(record.schema.name)
                    else:
                        db.catalog.create_table(record.schema)
                elif isinstance(record, DropTableRecord):
                    if record.table in transient_names:
                        transient_names.discard(record.table)
                    elif db.catalog.exists(record.table):
                        db.catalog.drop_table(record.table)
                    else:
                        db.catalog.drop_zombie(record.table)
                elif isinstance(record, RenameTableRecord):
                    if record.old_name in transient_names:
                        transient_names.discard(record.old_name)
                        transient_names.add(record.new_name)
                    else:
                        db.catalog.rename_table(record.old_name,
                                                record.new_name)
                elif isinstance(record, TransformSwapRecord):
                    if record.transform_id in retired_ids:
                        continue
                    propagator = _replay_swap(db, record, transient_names)
                    if propagator is not None:
                        propagators.append(propagator)
                else:
                    change = data_change_of(record)
                    if change is not None:
                        _redo(db, change, record.lsn)
                        for propagator in propagators:
                            propagator.apply(record)
            if obs.enabled:
                pass_span.attrs["records"] = replayed

        # ---- undo --------------------------------------------------------
        with obs.span("recovery.undo") as pass_span:
            db.txns._next_id = max_txn_id + 1  # resume the id sequence
            for txn_id in in_commit:
                # Commit record present, end record lost in the crash:
                # complete the commit instead of rolling the winner back.
                log.append(EndRecord(txn_id=txn_id))
            for txn_id in sorted(losers, reverse=True):
                state = losers[txn_id]
                txn = Transaction(txn_id)
                txn.first_lsn = state.first_lsn
                txn.last_lsn = state.last_lsn
                txn.state = TxnState.ACTIVE
                db.txns._txns[txn_id] = txn
                undo_from = log.end_lsn
                # Blame: the rollback acts on recovery's behalf, not the
                # dead user's.  Restart is offline today, so this only
                # matters if a workload is ever admitted mid-undo -- but
                # the attribution must already be right when that lands.
                obs.blame.set_role(txn_id, ROLE_RECOVERY)
                db.abort(txn)
                # Feed the freshly written CLRs to any live propagator so
                # aborted old transactions also converge in the published
                # tables.
                for record in log.scan(undo_from + 1):
                    for propagator in propagators:
                        propagator.apply(record)
            if obs.enabled:
                pass_span.attrs["losers_rolled_back"] = len(losers)

        # All pre-crash transactions are now finished; zombies can go.
        for name in list(db.catalog.zombie_names()):
            db.catalog.drop_zombie(name)
        if obs.enabled:
            root.attrs["propagators"] = len(propagators)
    return db


def restart_from_disk(disk, metrics=None,
                      flush_policy=None) -> Database:
    """Salvage the WAL from ``disk`` and run restart recovery on it.

    The durable path's one-call recovery entry point: the disk's crash
    image is salvaged with :meth:`LogManager.from_disk` (torn tails
    truncated, mid-log corruption raising
    :class:`~repro.common.errors.LogCorruptionError` before anything is
    applied) and :func:`restart` replays the salvaged **flushed prefix**
    -- never the pre-crash in-memory record list.  The returned database
    shares the recovered log, whose later flushes continue the same disk
    segment.
    """
    log = LogManager.from_disk(disk, metrics=metrics,
                               flush_policy=flush_policy)
    return restart(log, metrics=metrics)


class _TxnAnalysis:
    """Per-transaction facts gathered by the analysis pass."""

    __slots__ = ("first_lsn", "last_lsn", "finished", "committed")

    def __init__(self) -> None:
        self.first_lsn = NULL_LSN
        self.last_lsn = NULL_LSN
        self.finished = False
        self.committed = False


def _analysis(log: LogManager,
              end_lsn: int) -> Tuple[Dict[int, _TxnAnalysis],
                                     List[int], int]:
    """Find loser and in-commit transactions and the largest txn id.

    The scan is bounded by the most recent fuzzy checkpoint (if any):
    analysis starts there, seeded with the checkpoint's snapshot of the
    active-transaction table, then reads forward to the end of the log.
    """
    txns: Dict[int, _TxnAnalysis] = {}
    max_id = 0
    start_lsn = NULL_LSN + 1
    checkpoint: Optional[CheckpointRecord] = None
    for record in log.scan(to_lsn=end_lsn):
        if isinstance(record, CheckpointRecord):
            checkpoint = record
    if checkpoint is not None:
        start_lsn = checkpoint.lsn
        for txn_id, last_lsn in checkpoint.active_txns.items():
            state = txns.setdefault(txn_id, _TxnAnalysis())
            state.first_lsn = last_lsn or checkpoint.lsn
            state.last_lsn = last_lsn or checkpoint.lsn
            max_id = max(max_id, txn_id)
    for record in log.scan(from_lsn=start_lsn, to_lsn=end_lsn):
        txn_id = record.txn_id
        if txn_id == 0:
            continue
        max_id = max(max_id, txn_id)
        state = txns.setdefault(txn_id, _TxnAnalysis())
        if state.first_lsn == NULL_LSN:
            state.first_lsn = record.lsn
        state.last_lsn = record.lsn
        if isinstance(record, EndRecord):
            state.finished = True
        elif isinstance(record, CommitRecord):
            # A commit record makes the transaction durable even if the
            # crash hit before its end record was appended: it is a
            # winner ("in-commit"), never a rollback candidate.
            state.committed = True
    losers = {i: s for i, s in txns.items()
              if not s.finished and not s.committed}
    in_commit = sorted(i for i, s in txns.items()
                       if s.committed and not s.finished)
    return losers, in_commit, max_id


def _redo(db: Database, change: LogRecord, lsn: int) -> None:
    """Reapply one data change with the standard LSN guard."""
    try:
        table = db.catalog.get_any(change.table)
    except Exception:
        return  # change to a transient (discarded) table
    if isinstance(change, InsertRecord):
        existing = table.get(change.key)
        if existing is None:
            table.insert_row(dict(change.values), lsn=lsn)
        elif existing.lsn < lsn:
            table.update_rowid(existing.rowid, dict(change.values), lsn=lsn)
    elif isinstance(change, DeleteRecord):
        existing = table.get(change.key)
        if existing is not None and existing.lsn < lsn:
            table.delete_rowid(existing.rowid)
    elif isinstance(change, UpdateRecord):
        existing = table.get(change.key)
        if existing is not None and existing.lsn < lsn:
            table.update_rowid(existing.rowid, dict(change.changes), lsn=lsn)


def _replay_swap(db: Database, record: TransformSwapRecord,
                 transient_names: Set[str]) -> Optional[object]:
    """Recompute published tables at a swap point and install them."""
    rebuild = _REBUILDERS.get(record.transform_kind)
    if rebuild is None:
        raise RecoveryError(
            f"no recovery rebuilder registered for transformation kind "
            f"{record.transform_kind!r}")
    published, propagator = rebuild(db, record)
    for name in published:
        transient_names.discard(name)
        transient_names.discard(record.published.get(name, name))
    db.catalog.swap(record.retired, published, keep_zombies=True)
    return propagator
